//! Bounded top-k selection over row scores.
//!
//! The inference-side counterpart of the training kernels: a trained
//! embedding matrix answers "which `k` nodes score highest against this
//! query?" (link prediction and neighbor serving — the paper's Fig. 3 /
//! Table 5 workload, run online). Scoring is a dense scan — one inner
//! product per row, fused four rows at a time through
//! [`crate::vector::dot4`] — and selection keeps a bounded binary min-heap
//! of size `k`, so a query over `n` rows costs `O(n r)` multiplies and
//! `O(n log k)` comparisons with no `O(n)` score buffer.
//!
//! Determinism contract: results depend only on the scores. Ties break
//! toward the **lower row index**, and the returned list is sorted by
//! `(score desc, index asc)`, so callers (including the parallel
//! `batch_top_k` in `advsgm-store`) can compare result lists across thread
//! counts bitwise.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::backend::{self, RelaxedKernels};
use crate::matrix::DenseMatrix;

#[cfg(test)]
use crate::vector;

/// One scored row: the output unit of a top-k query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredIndex {
    /// Row index in the scanned matrix.
    pub index: usize,
    /// The row's score (inner product against the query).
    pub score: f64,
}

/// Min-heap entry ordered by `(score, Reverse(index))` under total order,
/// so the heap root is always the *weakest* kept candidate and ties evict
/// the higher index first.
#[derive(Debug, Clone, Copy)]
struct HeapEntry(ScoredIndex);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the root is the entry we
        // want to evict first: lowest score, then highest index.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.index.cmp(&other.0.index))
    }
}

/// A bounded top-k accumulator: keeps the `k` highest-scoring indices seen
/// so far, evicting the weakest entry once full.
///
/// # Examples
/// ```
/// use advsgm_linalg::topk::TopK;
///
/// let mut top = TopK::new(2);
/// for (i, s) in [0.5, 2.0, 1.0, 2.0].iter().enumerate() {
///     top.push(i, *s);
/// }
/// let out = top.into_sorted();
/// // Ties break toward the lower index: row 1 beats row 3 at score 2.0.
/// assert_eq!(out.iter().map(|e| e.index).collect::<Vec<_>>(), vec![1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Creates an accumulator keeping the best `k` entries (`k = 0` keeps
    /// nothing and every push is a no-op).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers one `(index, score)` candidate.
    #[inline]
    pub fn push(&mut self, index: usize, score: f64) {
        if self.k == 0 {
            return;
        }
        let entry = HeapEntry(ScoredIndex { index, score });
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(weakest) = self.heap.peek() {
            // Replace the root only if the candidate strictly beats it
            // under the same (score, index) order the heap uses.
            if entry.cmp(weakest) == Ordering::Less {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Number of entries currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the accumulator, returning entries sorted by
    /// `(score desc, index asc)`.
    pub fn into_sorted(self) -> Vec<ScoredIndex> {
        let mut out: Vec<ScoredIndex> = self.heap.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.index.cmp(&b.index))
        });
        out
    }
}

/// Scores `query` against every row of `matrix` (inner product, fused four
/// rows per pass via the dispatched [`backend::dot4`]) and returns the top
/// `k` rows,
/// excluding `exclude` when given (the self-row of a neighbor query).
///
/// Returned entries are sorted by `(score desc, index asc)`; fewer than `k`
/// entries come back when the matrix has fewer eligible rows.
///
/// # Panics
/// Panics if `query.len() != matrix.cols()`.
///
/// # Examples
/// ```
/// use advsgm_linalg::matrix::DenseMatrix;
/// use advsgm_linalg::topk::top_k_rows;
///
/// let m = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
/// let top = top_k_rows(&m, &[1.0, 0.0], 2, Some(0));
/// assert_eq!(top[0].index, 2); // [1,1] scores 1.0
/// assert_eq!(top[1].index, 1); // [0,1] scores 0.0
/// ```
pub fn top_k_rows(
    matrix: &DenseMatrix,
    query: &[f64],
    k: usize,
    exclude: Option<usize>,
) -> Vec<ScoredIndex> {
    assert_eq!(
        query.len(),
        matrix.cols(),
        "top_k_rows: query length {} != matrix cols {}",
        query.len(),
        matrix.cols()
    );
    let n = matrix.rows();
    let mut top = TopK::new(k);
    let mut row = 0usize;
    // Fused path: four rows per traversal of the query, through the
    // runtime-dispatched kernel backend.
    while row + 4 <= n {
        let scores = backend::dot4(
            query,
            matrix.row(row),
            matrix.row(row + 1),
            matrix.row(row + 2),
            matrix.row(row + 3),
        );
        for (off, &s) in scores.iter().enumerate() {
            if Some(row + off) != exclude {
                top.push(row + off, s);
            }
        }
        row += 4;
    }
    // Remainder rows (n % 4 != 0) go through the same dispatched entry
    // point as the fused path, so backend choice is uniform across the
    // scan — and bitwise-identical scores either way (see `dot4` docs).
    while row < n {
        if Some(row) != exclude {
            top.push(row, backend::dot(query, matrix.row(row)));
        }
        row += 1;
    }
    top.into_sorted()
}

/// [`top_k_rows`] restricted to an explicit candidate set: scores `query`
/// against only the listed `rows` and returns the top `k` of them,
/// excluding `exclude` when given.
///
/// This is the scan kernel of cluster-pruned (IVF-style) approximate
/// retrieval: an index nominates a subset of rows and this function ranks
/// them. Each row is scored with the dispatched [`backend::dot`] (scalar
/// on every backend — its single sequential accumulator is the pinned FP
/// association), which is bitwise-identical to the fused
/// [`crate::vector::dot4`] path `top_k_rows` uses (see `dot4`'s docs), so
/// a candidate set covering **every** row yields a result
/// bitwise-identical to `top_k_rows` — top-k selection under the total
/// `(score desc, index asc)` order does not depend on scan order.
///
/// The candidate set is expected to list each row at most once (an IVF
/// index's clusters partition the rows, so this holds by construction); a
/// duplicated row may occupy more than one result slot. Out-of-range rows
/// panic like [`DenseMatrix::row`].
///
/// # Panics
/// Panics if `query.len() != matrix.cols()` or a listed row is out of
/// range.
///
/// # Examples
/// ```
/// use advsgm_linalg::matrix::DenseMatrix;
/// use advsgm_linalg::topk::{top_k_rows, top_k_rows_among};
///
/// let m = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
/// // A candidate set covering every row reproduces the full scan.
/// let full = top_k_rows(&m, &[1.0, 0.0], 2, Some(0));
/// let among = top_k_rows_among(&m, &[1.0, 0.0], 2, 0..3, Some(0));
/// assert_eq!(full, among);
/// ```
pub fn top_k_rows_among<I>(
    matrix: &DenseMatrix,
    query: &[f64],
    k: usize,
    rows: I,
    exclude: Option<usize>,
) -> Vec<ScoredIndex>
where
    I: IntoIterator<Item = usize>,
{
    assert_eq!(
        query.len(),
        matrix.cols(),
        "top_k_rows_among: query length {} != matrix cols {}",
        query.len(),
        matrix.cols()
    );
    let mut top = TopK::new(k);
    for row in rows {
        if Some(row) != exclude {
            top.push(row, backend::dot(query, matrix.row(row)));
        }
    }
    top.into_sorted()
}

/// [`top_k_rows_among`] on the **relaxed** arithmetic tier: every
/// candidate row is scored with [`RelaxedKernels::dot`] — a reassociated
/// multi-lane FMA reduction — instead of the bitwise-tier scalar dot.
///
/// Scores may differ from the exact scan in the last few ULPs, so
/// near-tied candidates can swap ranks; callers are by construction in
/// approximate (recall < 1) serving, where the result set is already a
/// recall trade-off and the released embeddings make any rescoring
/// Theorem-5 post-processing. For a fixed backend the result is fully
/// deterministic. The exact-mode and training paths have no route to
/// this function: it exists only behind the [`RelaxedKernels`] opt-in.
///
/// # Panics
/// Panics if `query.len() != matrix.cols()` or a listed row is out of
/// range.
pub fn top_k_rows_among_relaxed<I>(
    kernels: &RelaxedKernels,
    matrix: &DenseMatrix,
    query: &[f64],
    k: usize,
    rows: I,
    exclude: Option<usize>,
) -> Vec<ScoredIndex>
where
    I: IntoIterator<Item = usize>,
{
    assert_eq!(
        query.len(),
        matrix.cols(),
        "top_k_rows_among: query length {} != matrix cols {}",
        query.len(),
        matrix.cols()
    );
    let mut top = TopK::new(k);
    for row in rows {
        if Some(row) != exclude {
            top.push(row, kernels.dot(query, matrix.row(row)));
        }
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DenseMatrix::from_vec(rows.len(), cols, data).unwrap()
    }

    /// Reference: full sort of all eligible scores.
    fn brute_force(
        matrix: &DenseMatrix,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<ScoredIndex> {
        let mut all: Vec<ScoredIndex> = (0..matrix.rows())
            .filter(|&i| Some(i) != exclude)
            .map(|i| ScoredIndex {
                index: i,
                score: vector::dot(query, matrix.row(i)),
            })
            .collect();
        all.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.index.cmp(&b.index))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force_on_awkward_sizes() {
        // Sizes straddling the 4-row fused boundary.
        for n in [1usize, 3, 4, 5, 7, 8, 9, 17] {
            let m = DenseMatrix::from_fn(n, 6, |i, j| ((i * 7 + j * 3) as f64 * 0.37).sin());
            let q: Vec<f64> = (0..6).map(|j| (j as f64 + 0.5).cos()).collect();
            for k in [0usize, 1, 2, n, n + 3] {
                for exclude in [None, Some(0), Some(n - 1)] {
                    let fast = top_k_rows(&m, &q, k, exclude);
                    let slow = brute_force(&m, &q, k, exclude);
                    assert_eq!(fast.len(), slow.len(), "n={n} k={k}");
                    for (f, s) in fast.iter().zip(&slow) {
                        assert_eq!(f.index, s.index, "n={n} k={k} exclude={exclude:?}");
                        assert_eq!(f.score.to_bits(), s.score.to_bits());
                    }
                }
            }
        }
    }

    /// Satellite regression: with n = 4k+1 rows the tail row must go
    /// through the same dispatched entry point as the fused body — its
    /// score (and the resulting neighbor list) must be bitwise-identical
    /// to scanning the 4k-row prefix plus scoring the tail row alone.
    #[test]
    fn remainder_row_matches_prefix_plus_tail() {
        let n = 4 * 5 + 1; // 21 rows: 5 fused quads + 1 remainder row
        let dim = 9;
        let m = DenseMatrix::from_fn(n, dim, |i, j| ((i * 13 + j * 5) as f64 * 0.29).sin());
        let q: Vec<f64> = (0..dim).map(|j| (j as f64 * 0.61).cos()).collect();
        let k = n; // keep every score so all rows are compared bitwise

        let full = top_k_rows(&m, &q, k, None);

        // 4k-row prefix scanned on its own...
        let prefix = DenseMatrix::from_fn(n - 1, dim, |i, j| m.row(i)[j]);
        let mut expected = top_k_rows(&prefix, &q, k, None);
        // ...plus the tail row scored alone through the dispatched dot.
        expected.push(ScoredIndex {
            index: n - 1,
            score: backend::dot(&q, m.row(n - 1)),
        });
        expected.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.index.cmp(&b.index))
        });

        assert_eq!(full.len(), expected.len());
        for (f, e) in full.iter().zip(&expected) {
            assert_eq!(f.index, e.index);
            assert_eq!(f.score.to_bits(), e.score.to_bits());
        }
    }

    /// The relaxed candidate scan returns the same neighbor *sets* as the
    /// exact one on well-separated scores, and is deterministic.
    #[test]
    fn relaxed_among_is_deterministic_and_close() {
        let n = 12;
        let dim = 16;
        let m = DenseMatrix::from_fn(n, dim, |i, j| ((i * 31 + j * 7) as f64 * 0.11).sin());
        let q: Vec<f64> = (0..dim).map(|j| (j as f64 * 0.43).cos()).collect();
        let kernels = RelaxedKernels::opt_in();

        let a = top_k_rows_among_relaxed(&kernels, &m, &q, 4, 0..n, Some(2));
        let b = top_k_rows_among_relaxed(&kernels, &m, &q, 4, 0..n, Some(2));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }

        let exact = top_k_rows_among(&m, &q, 4, 0..n, Some(2));
        for (r, e) in a.iter().zip(&exact) {
            assert_eq!(r.index, e.index, "well-separated scores must agree");
            let rel = ((r.score - e.score) / e.score).abs();
            assert!(rel < 1e-12, "relaxed score drifted: {rel}");
        }
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let m = matrix_from_rows(&[&[1.0], &[1.0], &[1.0], &[2.0], &[1.0]]);
        let top = top_k_rows(&m, &[1.0], 3, None);
        assert_eq!(
            top.iter().map(|e| e.index).collect::<Vec<_>>(),
            vec![3, 0, 1]
        );
    }

    #[test]
    fn exclude_removes_self_row() {
        let m = matrix_from_rows(&[&[5.0], &[1.0], &[3.0]]);
        let top = top_k_rows(&m, &[1.0], 3, Some(0));
        assert_eq!(top.iter().map(|e| e.index).collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn k_zero_and_empty_matrix() {
        let m = matrix_from_rows(&[&[1.0, 2.0]]);
        assert!(top_k_rows(&m, &[1.0, 1.0], 0, None).is_empty());
        let empty = DenseMatrix::zeros(0, 2);
        assert!(top_k_rows(&empty, &[1.0, 1.0], 5, None).is_empty());
    }

    #[test]
    fn negative_and_nonfinite_scores_order_totally() {
        // total_cmp gives NaN a fixed position; the heap must not panic
        // and ordering must stay deterministic.
        let m = matrix_from_rows(&[&[f64::NAN], &[-1.0], &[f64::INFINITY], &[0.0]]);
        let a = top_k_rows(&m, &[1.0], 4, None);
        let b = top_k_rows(&m, &[1.0], 4, None);
        let idx: Vec<usize> = a.iter().map(|e| e.index).collect();
        assert_eq!(idx, b.iter().map(|e| e.index).collect::<Vec<_>>());
        // +inf first; NaN sorts above +inf under total_cmp's descending order.
        assert_eq!(idx, vec![0, 2, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn query_dim_mismatch_panics() {
        top_k_rows(&DenseMatrix::zeros(2, 3), &[1.0], 1, None);
    }

    #[test]
    fn among_full_coverage_is_bitwise_equal_to_full_scan() {
        // Any enumeration order of a full candidate set must reproduce the
        // fused full scan exactly — including NaN/inf rows and ties.
        let mut m = DenseMatrix::from_fn(17, 5, |i, j| ((i * 11 + j * 3) as f64 * 0.29).sin());
        m.set(3, 0, f64::NAN);
        m.set(8, 2, f64::INFINITY);
        m.set(12, 1, f64::NEG_INFINITY);
        let q: Vec<f64> = (0..5).map(|j| (j as f64 * 0.61).cos()).collect();
        for k in [0usize, 1, 4, 17, 30] {
            for exclude in [None, Some(3), Some(16)] {
                let full = top_k_rows(&m, &q, k, exclude);
                let fwd = top_k_rows_among(&m, &q, k, 0..17, exclude);
                let rev = top_k_rows_among(&m, &q, k, (0..17).rev(), exclude);
                assert_eq!(full.len(), fwd.len());
                assert_eq!(fwd.len(), rev.len());
                for ((a, b), c) in full.iter().zip(&fwd).zip(&rev) {
                    assert_eq!(a.index, b.index, "k={k} exclude={exclude:?}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                    // NaN scores defeat PartialEq; scan-order invariance
                    // must hold bitwise.
                    assert_eq!(b.index, c.index, "scan order must not matter");
                    assert_eq!(b.score.to_bits(), c.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn among_subset_ranks_only_listed_rows() {
        let m = matrix_from_rows(&[&[5.0], &[4.0], &[3.0], &[2.0], &[1.0]]);
        let top = top_k_rows_among(&m, &[1.0], 2, [4, 2, 3], None);
        assert_eq!(top.iter().map(|e| e.index).collect::<Vec<_>>(), vec![2, 3]);
        // Exclusion applies inside the subset too.
        let top = top_k_rows_among(&m, &[1.0], 2, [4, 2, 3], Some(2));
        assert_eq!(top.iter().map(|e| e.index).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn among_query_dim_mismatch_panics() {
        top_k_rows_among(&DenseMatrix::zeros(2, 3), &[1.0], 1, 0..2, None);
    }
}
