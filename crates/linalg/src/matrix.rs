//! Row-major dense matrix.
//!
//! The embedding matrices `W_in`, `W_out` of the skip-gram model and the
//! generator weights are all dense `|V| x r` or `r x r` matrices whose rows
//! are accessed far more often than their columns, so a row-major layout with
//! cheap `&[f64]` row views is the natural representation.

use crate::error::LinalgError;
use crate::vector;

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a closure mapping `(row, col)` to a value.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix that takes ownership of `data` (row-major).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i)[j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.row_mut(i)[j] = v;
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Matrix-vector product `self * x` (x is a column vector of length `cols`).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        Ok(self.rows_iter().map(|r| vector::dot(r, x)).collect())
    }

    /// Vector-matrix product `x^T * self` (x has length `rows`); returns a
    /// vector of length `cols`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "vecmat",
                lhs: (1, x.len()),
                rhs: (self.rows, self.cols),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (xi, row) in x.iter().zip(self.rows_iter()) {
            vector::axpy(*xi, row, &mut out);
        }
        Ok(out)
    }

    /// Matrix product `self * other`.
    ///
    /// A straightforward ikj-ordered triple loop; all matrices in this
    /// workspace are small (`r x r` with r <= 256), so cache blocking is not
    /// worth the complexity.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = out.row_mut(i);
                vector::axpy(aik, b_row, o_row);
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Rank-1 update `self += alpha * x * y^T`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn rank1_update(&mut self, alpha: f64, x: &[f64], y: &[f64]) -> Result<(), LinalgError> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "rank1_update",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vector::axpy(alpha * xi, y, self.row_mut(i));
            }
        }
        Ok(())
    }

    /// Element-wise `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) -> Result<(), LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "matrix axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        vector::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i3 = DenseMatrix::identity(3);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_rejects_bad_shape() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let x = vec![2.0, -1.0];
        let a = m.vecmat(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_small_example() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_right() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let c = a.matmul(&DenseMatrix::identity(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(2, 4, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn rank1_update_outer_product() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.rank1_update(2.0, &[1.0, 3.0], &[4.0, 5.0]).unwrap();
        assert_eq!(m.as_slice(), &[8.0, 10.0, 24.0, 30.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn axpy_matrices() {
        let mut a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 2, vec![10.0, 20.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        DenseMatrix::zeros(1, 1).row(1);
    }
}
