//! Activation functions, including the paper's constrained sigmoid.
//!
//! AdvSGM uses the logistic sigmoid in three roles (Remark 2 of the paper):
//! the skip-gram link function `sigma(.)` in Eq. (2), the discriminant
//! function `F(.)` in Eqs. (1)/(3), and the generator activation `phi(.)`.
//!
//! Section IV-C replaces `F(.)` and `sigma(.)` by a *constrained sigmoid*
//! `S(x) = 1 / (1 + clipexp(e^{-x}; a, b))` whose inner exponential is
//! smoothly clipped to `[a, b]` by Algorithm 1 ("Exponential Clipping").
//! This bounds `S` to roughly `[1/(1+b), 1/(1+a)]`, so the adaptive module
//! weight `lambda = 1/S(.)` of Theorem 6 stays in `[~1+a, ~1+b]` — the
//! mechanism that keeps the adversarial gradient term well-scaled.

/// Numerically stable logistic sigmoid `1 / (1 + e^{-x})`.
///
/// Uses the two-branch formulation so that large `|x|` never evaluates
/// `exp` of a large positive argument.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Numerically stable `ln(sigmoid(x))`.
///
/// `log_sigmoid(x) = -ln(1 + e^{-x}) = min(x, 0) - ln(1 + e^{-|x|})`.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    x.min(0.0) - (-x.abs()).exp().ln_1p()
}

/// Derivative of the sigmoid expressed through its value:
/// `sigmoid'(x) = s * (1 - s)` where `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_derivative_from_value(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Hyperbolic tangent (thin wrapper for symmetry with the other activations).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Algorithm 1 of the paper: *exponential clipping*, a smooth clamp of `x`
/// into `[a, b]` with exponentially rounded corners.
///
/// Compared with a hard `clamp`, the corners have controllable sharpness:
/// the constant `c` is derived from `tanh` so that the transition width
/// scales with `(b - a)`. The function is monotone non-decreasing and
/// differentiable everywhere, and satisfies
/// `a <= softclip(x) <= b + 1/(2c)` style bounds (the corner terms overshoot
/// by at most `1/(2c)` on either side).
///
/// `lower`/`upper` are optional exactly as in the paper's pseudocode.
///
/// # Panics
/// Panics if both bounds are given and `lower >= upper`.
pub fn exp_clip(x: f64, lower: Option<f64>, upper: Option<f64>) -> f64 {
    // c_tanh = 2 / (e^2 + 1); c = 1 / (2 c_tanh); if both bounds: c /= (b-a)/2.
    let c_tanh = 2.0 / (2.0_f64.exp() + 1.0);
    let mut c = 1.0 / (2.0 * c_tanh);
    if let (Some(a), Some(b)) = (lower, upper) {
        assert!(a < b, "exp_clip: lower {a} must be < upper {b}");
        c /= (b - a) / 2.0;
    }
    exp_clip_with_sharpness(x, lower, upper, c)
}

/// Sharp-corner variant of [`exp_clip`]: identical construction but with the
/// corner-sharpness constant *multiplied* by `(b - a)/2` instead of divided,
/// so the corner overshoot `1/(2c)` *shrinks* as the clip range widens.
///
/// The paper's pseudocode prints the division (wide corners), but its
/// surrounding claims — "we fix a = 1e-5 to ensure that the upper bound of
/// S(x) approaches 1" and `S in [1/(1+b), 1/(1+a)]` — hold only for this
/// sharp variant (with wide corners the supremum of `S` is ~0.066 for
/// b = 120, nowhere near 1, and the skip-gram gradients through `S` shrink
/// by ~15x). [`ConstrainedSigmoid`] therefore uses this variant; DESIGN.md
/// records the discrepancy.
pub fn exp_clip_sharp(x: f64, lower: Option<f64>, upper: Option<f64>) -> f64 {
    let c_tanh = 2.0 / (2.0_f64.exp() + 1.0);
    let mut c = 1.0 / (2.0 * c_tanh);
    if let (Some(a), Some(b)) = (lower, upper) {
        assert!(a < b, "exp_clip_sharp: lower {a} must be < upper {b}");
        c *= (b - a) / 2.0;
    }
    exp_clip_with_sharpness(x, lower, upper, c)
}

/// Core smooth clamp with caller-supplied corner sharpness `c > 0`:
/// `clamp(x; a, b) + e^{-c|x-a|}/(2c) - e^{-c|x-b|}/(2c)`.
pub fn exp_clip_with_sharpness(x: f64, lower: Option<f64>, upper: Option<f64>, c: f64) -> f64 {
    debug_assert!(c > 0.0, "corner sharpness must be positive");
    let mut val = x;
    if let Some(b) = upper {
        val = val.min(b);
    }
    if let Some(a) = lower {
        val = val.max(a);
    }
    if let Some(a) = lower {
        // exp(-c |x - a|) / (2c); with x possibly infinite the exponent is
        // -inf and the term vanishes, which is the correct limit.
        val += (-c * (x - a).abs()).exp() / (2.0 * c);
    }
    if let Some(b) = upper {
        val -= (-c * (x - b).abs()).exp() / (2.0 * c);
    }
    val
}

/// The paper's constrained sigmoid `S(x) = 1 / (1 + clipexp(e^{-x}; a, b))`.
///
/// With the paper defaults `a = 1e-5`, `b = 120`, the output range is
/// approximately `[1/121, ~1]` and the inverse weight `lambda = 1/S(x)` is
/// bounded by `~1 + b` (Section IV-C, "Constrained Sigmoid").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstrainedSigmoid {
    /// Lower clip bound `a` for the inner exponential (`> 0`).
    pub a: f64,
    /// Upper clip bound `b` for the inner exponential (`> a`).
    pub b: f64,
}

impl ConstrainedSigmoid {
    /// Paper defaults: `a = 1e-5`, `b = 120` (Section VI-A).
    pub const PAPER_DEFAULT: ConstrainedSigmoid = ConstrainedSigmoid { a: 1e-5, b: 120.0 };

    /// Creates a constrained sigmoid with bounds `0 < a < b`.
    ///
    /// # Panics
    /// Panics if the bounds are not `0 < a < b`.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a > 0.0 && b > a,
            "constrained sigmoid requires 0 < a < b, got a={a}, b={b}"
        );
        Self { a, b }
    }

    /// Evaluates `S(x)` (using the sharp-corner clip; see
    /// [`exp_clip_sharp`] for why).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        // e^{-x} with saturation: beyond ~709 the exponential overflows f64;
        // +inf flows through the clip to the upper bound, which is the limit.
        let e = if -x > 709.0 {
            f64::INFINITY
        } else {
            (-x).exp()
        };
        1.0 / (1.0 + exp_clip_sharp(e, Some(self.a), Some(self.b)))
    }

    /// The adaptive module weight `lambda = 1 / S(x)` of Theorem 6.
    #[inline]
    pub fn inverse_weight(&self, x: f64) -> f64 {
        1.0 / self.eval(x)
    }

    /// Derivative `dS/dx` computed analytically.
    ///
    /// `S = 1/(1+g(e^{-x}))` with `g = exp_clip`, so
    /// `dS/dx = g'(e^{-x}) * e^{-x} * S^2`.
    /// (Note the two minus signs — from `d e^{-x}/dx` and from
    /// `d(1/(1+u))/du` — cancel.)
    pub fn derivative(&self, x: f64) -> f64 {
        let e = if -x > 709.0 {
            f64::INFINITY
        } else {
            (-x).exp()
        };
        if !e.is_finite() {
            return 0.0; // saturated: S is flat at its lower bound
        }
        let s = self.eval(x);
        let gp = exp_clip_derivative(e, self.a, self.b);
        gp * e * s * s
    }

    /// Exact infimum of `S`: the limit as `x -> -inf`, where the inner
    /// exponential saturates at `b`, giving `1/(1+b)`.
    pub fn min_value(&self) -> f64 {
        1.0 / (1.0 + self.b)
    }

    /// Exact supremum of `S`: the limit as `x -> +inf`, where the inner
    /// exponential tends to `0` and the sharp clip evaluates to
    /// `softclip(0; a, b) ~ a + 1/(2c)`. For the paper's defaults this is
    /// ~0.996 — "the upper bound of S(x) approaches 1" as Section VI-A
    /// requires — and the adaptive weight `lambda = 1/S(.)` is bounded in
    /// `[1/max_value, 1 + b]`.
    pub fn max_value(&self) -> f64 {
        1.0 / (1.0 + exp_clip_sharp(0.0, Some(self.a), Some(self.b)))
    }

    /// Maximum overshoot of the smooth corners: `1/(2c)` for the sharp
    /// scaling (~0.004 at the paper defaults).
    pub fn corner_overshoot(&self) -> f64 {
        let c_tanh = 2.0 / (2.0_f64.exp() + 1.0);
        let c = 1.0 / (2.0 * c_tanh) * ((self.b - self.a) / 2.0);
        1.0 / (2.0 * c)
    }
}

/// Derivative of [`exp_clip_sharp`] with both bounds present, used by
/// [`ConstrainedSigmoid::derivative`].
fn exp_clip_derivative(x: f64, a: f64, b: f64) -> f64 {
    let c_tanh = 2.0 / (2.0_f64.exp() + 1.0);
    let c = 1.0 / (2.0 * c_tanh) * ((b - a) / 2.0);
    // d/dx [ clamp(x) + e^{-c|x-a|}/(2c) - e^{-c|x-b|}/(2c) ]
    let clamp_term = if x > a && x < b { 1.0 } else { 0.0 };
    let sa = if x >= a { -1.0 } else { 1.0 }; // d|x-a|/dx has sign(x-a)
    let sb = if x >= b { -1.0 } else { 1.0 };
    let corner_a = sa * (-c * (x - a).abs()).exp() / 2.0;
    let corner_b = -sb * (-c * (x - b).abs()).exp() / 2.0;
    clamp_term + corner_a + corner_b
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn sigmoid_at_zero_is_half() {
        assert!((sigmoid(0.0) - 0.5).abs() < EPS);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1, 1.0, 5.0, 30.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < EPS, "x={x}");
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert_eq!(sigmoid(1e6), 1.0);
        assert_eq!(sigmoid(-1e6), 0.0);
        assert!(sigmoid(f64::MAX).is_finite());
    }

    #[test]
    fn log_sigmoid_matches_ln_of_sigmoid_in_safe_range() {
        for &x in &[-20.0, -1.0, 0.0, 1.0, 20.0] {
            assert!((log_sigmoid(x) - sigmoid(x).ln()).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn log_sigmoid_stable_for_large_negative() {
        // ln(sigmoid(-1000)) = -1000 - ln(1+e^{-1000}) ~= -1000
        let v = log_sigmoid(-1000.0);
        assert!((v + 1000.0).abs() < 1e-9);
    }

    #[test]
    fn derivative_from_value_peak_at_half() {
        assert!((sigmoid_derivative_from_value(0.5) - 0.25).abs() < EPS);
        assert_eq!(sigmoid_derivative_from_value(0.0), 0.0);
        assert_eq!(sigmoid_derivative_from_value(1.0), 0.0);
    }

    #[test]
    fn exp_clip_is_identity_like_in_the_middle() {
        // Far from both corners the function is within corner overshoot of x.
        let v = exp_clip(60.0, Some(1e-5), Some(120.0));
        assert!((v - 60.0).abs() < 1e-6, "v={v}");
    }

    #[test]
    fn exp_clip_saturates_below() {
        let a = 1e-5;
        let b = 120.0;
        let v = exp_clip(-500.0, Some(a), Some(b));
        assert!((v - a).abs() < 1e-6, "v={v}");
    }

    #[test]
    fn exp_clip_saturates_above() {
        let v = exp_clip(1e9, Some(1e-5), Some(120.0));
        assert!((v - 120.0).abs() < 1e-6, "v={v}");
    }

    #[test]
    fn exp_clip_handles_infinity() {
        let v = exp_clip(f64::INFINITY, Some(1e-5), Some(120.0));
        assert!((v - 120.0).abs() < 1e-9);
    }

    #[test]
    fn exp_clip_monotone_on_grid() {
        let mut prev = f64::NEG_INFINITY;
        let mut x = -200.0;
        while x <= 400.0 {
            let v = exp_clip(x, Some(1e-5), Some(120.0));
            assert!(v >= prev - 1e-12, "not monotone at x={x}: {v} < {prev}");
            prev = v;
            x += 0.5;
        }
    }

    #[test]
    fn exp_clip_single_sided_bounds() {
        // Upper bound only: behaves like x for small x, saturates at b.
        let v = exp_clip(-50.0, None, Some(10.0));
        assert!((v + 50.0).abs() < 1e-6);
        let v = exp_clip(1e6, None, Some(10.0));
        assert!((v - 10.0).abs() < 1e-6);
        // Lower bound only.
        let v = exp_clip(50.0, Some(0.0), None);
        assert!((v - 50.0).abs() < 1e-6);
        let v = exp_clip(-1e6, Some(0.0), None);
        assert!(v.abs() < 1e-6);
    }

    #[test]
    fn exp_clip_no_bounds_is_identity() {
        assert_eq!(exp_clip(3.25, None, None), 3.25);
    }

    #[test]
    #[should_panic(expected = "must be <")]
    fn exp_clip_rejects_inverted_bounds() {
        exp_clip(0.0, Some(1.0), Some(0.5));
    }

    #[test]
    fn constrained_sigmoid_range_paper_defaults() {
        let s = ConstrainedSigmoid::PAPER_DEFAULT;
        // Strongly negative input -> inner exp huge -> clipped to b -> S ~ 1/(1+120)
        let lo = s.eval(-1000.0);
        assert!((lo - 1.0 / 121.0).abs() < 1e-6, "lo={lo}");
        // Strongly positive input -> inner exp ~0 -> sharp clip evaluates to
        // ~a + 1/(2c) ~ 0.004, so S approaches 1 (Section VI-A's claim).
        let hi = s.eval(1000.0);
        assert!(
            (hi - s.max_value()).abs() < 1e-9,
            "hi={hi} max={}",
            s.max_value()
        );
        assert!(hi > 0.95, "hi={hi}");
        assert!(hi > lo);
    }

    #[test]
    fn constrained_sigmoid_tracks_plain_sigmoid_in_the_interior() {
        // For x where e^{-x} lies inside (a, b) away from the sharp corners,
        // S(x) coincides with the ordinary sigmoid.
        let s = ConstrainedSigmoid::PAPER_DEFAULT;
        for &x in &[-4.0, -1.0, 0.0, 1.0, 4.0] {
            let diff = (s.eval(x) - sigmoid(x)).abs();
            assert!(diff < 0.01, "x={x}: S={} sigmoid={}", s.eval(x), sigmoid(x));
        }
    }

    #[test]
    fn constrained_sigmoid_monotone() {
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        let mut prev = -1.0;
        let mut x = -30.0;
        while x <= 30.0 {
            let v = s.eval(x);
            assert!(v >= prev - 1e-12, "x={x}");
            prev = v;
            x += 0.05;
        }
    }

    #[test]
    fn inverse_weight_bounded_by_one_plus_b() {
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        for &x in &[-1e9, -100.0, -1.0, 0.0, 1.0, 100.0, 1e9] {
            let l = s.inverse_weight(x);
            assert!(l >= 0.9, "lambda too small at x={x}: {l}");
            assert!(
                l <= 1.0 + 120.0 + s.corner_overshoot() + 1e-6,
                "lambda too large at x={x}: {l}"
            );
        }
    }

    #[test]
    fn constrained_sigmoid_is_a_squashed_sigmoid() {
        // S shares the sigmoid's monotone S-shape but is squashed into
        // [1/(1+b), 1/(1+softclip(0))]; it should cover most of that range.
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        let lo = s.eval(-40.0);
        let hi = s.eval(40.0);
        assert!((lo - s.min_value()).abs() < 1e-6, "lo={lo}");
        assert!((hi - s.max_value()).abs() < 1e-6, "hi={hi}");
        // Midpoint sits strictly between the two saturation levels.
        let mid = s.eval(0.0);
        assert!(mid > lo && mid < hi, "mid={mid} lo={lo} hi={hi}");
    }

    #[test]
    fn wider_b_lowers_the_floor_of_s() {
        // Table IV sweeps b in {40,...,140}; the direct effect of larger b is
        // a smaller minimum of S, hence a larger maximum adaptive weight.
        let floors: Vec<f64> = [40.0, 80.0, 120.0, 140.0]
            .iter()
            .map(|&b| ConstrainedSigmoid::new(1e-5, b).min_value())
            .collect();
        for w in floors.windows(2) {
            assert!(w[1] < w[0], "floors not decreasing: {floors:?}");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        for &x in &[-4.0, -1.0, 0.0, 1.0, 4.0] {
            let h = 1e-6;
            let fd = (s.eval(x + h) - s.eval(x - h)) / (2.0 * h);
            let an = s.derivative(x);
            assert!((fd - an).abs() < 1e-5, "x={x}: fd={fd} an={an}");
        }
    }

    #[test]
    fn derivative_saturated_is_zero() {
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        assert_eq!(s.derivative(-2000.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < a < b")]
    fn constrained_sigmoid_rejects_bad_bounds() {
        ConstrainedSigmoid::new(2.0, 1.0);
    }

    #[test]
    fn min_max_value_bracket_observed_values() {
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        for &x in &[-1e3, -10.0, 0.0, 10.0, 1e3] {
            let v = s.eval(x);
            assert!(v >= s.min_value() - 1e-9, "x={x}");
            assert!(v <= s.max_value() + 1e-9, "x={x}");
        }
    }
}
