//! First-order optimizers with row-sparse updates.
//!
//! Skip-gram gradients are one-hot: a batch touches only the embedding rows
//! of the sampled nodes (Section IV-D of the paper: "only a fraction of the
//! node vectors in W_in and W_out are updated"). The [`Optimizer`] trait
//! therefore updates one *row* at a time, identified by a `slot` index so
//! that stateful optimizers (momentum, Adam) can keep per-row state.

use std::collections::HashMap;

/// A first-order optimizer applying gradient steps to individual rows.
pub trait Optimizer {
    /// Applies one descent step `param -= f(grad)` for the row identified by
    /// `slot`. `param` and `grad` must have equal lengths.
    fn step(&mut self, slot: usize, param: &mut [f64], grad: &[f64]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Clears any accumulated state (momentum buffers etc.).
    fn reset(&mut self) {}
}

/// Plain stochastic gradient descent: `param -= lr * grad`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with learning rate `lr > 0`.
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    #[inline]
    fn step(&mut self, _slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "sgd step: length mismatch");
        for (p, g) in param.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }
}

/// SGD with classical (heavy-ball) momentum.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f64,
    beta: f64,
    velocity: HashMap<usize, Vec<f64>>,
}

impl SgdMomentum {
    /// Creates momentum SGD. `beta` in `[0, 1)`.
    ///
    /// # Panics
    /// Panics on out-of-range hyper-parameters.
    pub fn new(lr: f64, beta: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta), "momentum beta must be in [0,1)");
        Self {
            lr,
            beta,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "momentum step: length mismatch");
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; param.len()]);
        assert_eq!(v.len(), param.len(), "slot reused with different width");
        for ((p, g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vi = self.beta * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with per-row state; used by the GNN-style baselines.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: HashMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the usual defaults `beta1=0.9, beta2=0.999, eps=1e-8`.
    pub fn new(lr: f64) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    /// Panics on out-of-range hyper-parameters.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        assert!(eps > 0.0, "eps must be positive");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "adam step: length mismatch");
        let s = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: vec![0.0; param.len()],
            v: vec![0.0; param.len()],
            t: 0,
        });
        assert_eq!(s.m.len(), param.len(), "slot reused with different width");
        s.t += 1;
        let b1t = 1.0 - self.beta1.powi(s.t as i32);
        let b2t = 1.0 - self.beta2.powi(s.t as i32);
        for i in 0..param.len() {
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * grad[i];
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = s.m[i] / b1t;
            let v_hat = s.v[i] / b2t;
            param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_single_step() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0, -1.0];
        opt.step(0, &mut p, &[2.0, -4.0]);
        assert_eq!(p, vec![0.8, -0.6]);
    }

    #[test]
    fn sgd_lr_change() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_zero_lr() {
        Sgd::new(0.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = SgdMomentum::new(1.0, 0.5);
        let mut p = vec![0.0];
        opt.step(0, &mut p, &[1.0]); // v = 1, p = -1
        opt.step(0, &mut p, &[1.0]); // v = 1.5, p = -2.5
        assert!((p[0] + 2.5).abs() < 1e-12);
    }

    #[test]
    fn momentum_slots_are_independent() {
        let mut opt = SgdMomentum::new(1.0, 0.9);
        let mut p0 = vec![0.0];
        let mut p1 = vec![0.0];
        opt.step(0, &mut p0, &[1.0]);
        opt.step(1, &mut p1, &[1.0]);
        // Both are first steps -> same magnitude despite shared optimizer.
        assert_eq!(p0, p1);
    }

    #[test]
    fn momentum_reset_clears_state() {
        let mut opt = SgdMomentum::new(1.0, 0.9);
        let mut p = vec![0.0];
        opt.step(0, &mut p, &[1.0]);
        opt.reset();
        let mut q = vec![0.0];
        opt.step(0, &mut q, &[1.0]);
        assert_eq!(q[0], -1.0); // as if first step again
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first Adam step is ~lr * sign(grad).
        let mut opt = Adam::new(0.01);
        let mut p = vec![0.0];
        opt.step(0, &mut p, &[3.0]);
        assert!((p[0] + 0.01).abs() < 1e-6, "p={}", p[0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(x) = (x - 3)^2 with gradient 2(x-3).
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0];
        for _ in 0..2000 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(0, &mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "p={}", p[0]);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![10.0];
        for _ in 0..200 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(0, &mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-6);
    }
}
