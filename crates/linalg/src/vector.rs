//! BLAS-1 style kernels over `f64` slices.
//!
//! These are the hot inner loops of skip-gram training: every positive or
//! negative pair costs a handful of dot products and axpy updates over
//! `r`-dimensional rows. All functions assert matching lengths in debug
//! builds and rely on iterator zips so the compiler can elide bounds checks.

/// Dot product `x . y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` (the classic axpy update).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Element-wise `out = x + y` into a fresh vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Element-wise `out = x - y` into a fresh vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Squared Euclidean norm `||x||^2`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Euclidean norm `||x||`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// Squared Euclidean distance `||x - y||^2`.
#[inline]
pub fn dist_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist_sq: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// DPSGD gradient clipping (Abadi et al. 2016, Eq. (5) of the AdvSGM paper):
/// rescales `x` in place to `x / max(1, ||x||_2 / c)` and returns the factor
/// that was applied (1.0 when no clipping occurred).
///
/// After the call `||x||_2 <= c` holds up to floating-point rounding.
#[inline]
pub fn clip_l2(x: &mut [f64], c: f64) -> f64 {
    assert!(c > 0.0, "clip_l2: threshold must be positive, got {c}");
    let norm = norm2(x);
    if norm > c {
        let factor = c / norm;
        scale(x, factor);
        factor
    } else {
        1.0
    }
}

/// Returns a clipped copy of `x` (see [`clip_l2`]).
#[inline]
pub fn clipped(x: &[f64], c: f64) -> Vec<f64> {
    let mut out = x.to_vec();
    clip_l2(&mut out, c);
    out
}

/// Normalises `x` to unit L2 norm in place. Zero vectors are left unchanged.
/// Returns the original norm.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let norm = norm2(x);
    if norm > 0.0 {
        scale(x, 1.0 / norm);
    }
    norm
}

/// Cosine similarity between `x` and `y`; 0.0 if either vector is zero.
#[inline]
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx == 0.0 || ny == 0.0 {
        0.0
    } else {
        dot(x, y) / (nx * ny)
    }
}

/// Sets every element of `x` to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 0.0;
    }
}

/// Element-wise Hadamard product `out = x (.) y`.
#[inline]
pub fn hadamard(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).collect()
}

/// `y += x` element-wise.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    axpy(1.0, x, y);
}

/// Sum of all elements.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Fused `y = (y + alpha * x) * beta` in one pass.
///
/// This is the per-row *apply* step of the trainer's noisy batch update:
/// add the row's share of the batch noise (`alpha = touch count`,
/// `x = noise vector`) and normalise by the touch count
/// (`beta = 1/count`) without re-traversing the row. Each element goes
/// through exactly the operations `(y_i + alpha * x_i) * beta`, i.e. the
/// same floating-point sequence as [`axpy`] followed by [`scale`], so
/// swapping the two-pass form for this kernel is bitwise-neutral.
#[inline]
pub fn fused_axpy_scale(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    assert_eq!(x.len(), y.len(), "fused_axpy_scale: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = (*yi + alpha * xi) * beta;
    }
}

/// Two dot products against a shared left operand in one pass:
/// returns `(x . a, x . b)`.
///
/// The discriminator's adversarial argument and the generator's score both
/// need `v . partner + v . noise` for the same `v`; fusing the two
/// traversals halves the loads of `x`. The accumulators are independent,
/// so each result is bitwise-identical to the corresponding [`dot`].
#[inline]
pub fn dot2(x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), a.len(), "dot2: length mismatch (a)");
    assert_eq!(x.len(), b.len(), "dot2: length mismatch (b)");
    let mut da = 0.0;
    let mut db = 0.0;
    for ((&xi, &ai), &bi) in x.iter().zip(a).zip(b) {
        da += xi * ai;
        db += xi * bi;
    }
    (da, db)
}

/// Scaled copy `out = alpha * x` into a fresh vector — the shape of every
/// closed-form skip-gram pair gradient (`c * partner`).
#[inline]
pub fn scaled(alpha: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| alpha * v).collect()
}

/// Four dot products against a shared left operand in one pass:
/// returns `[x . a, x . b, x . c, x . d]`.
///
/// The batched form of [`dot2`], sized for the query-serving scan: scoring
/// one query vector against an embedding matrix touches every row once, and
/// processing four rows per traversal of `x` quarters the loads of the
/// query. Each accumulator is independent, so every result is
/// bitwise-identical to the corresponding [`dot`] — the top-k path can swap
/// between the fused and scalar kernels without changing a single returned
/// neighbor.
#[inline]
pub fn dot4(x: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    assert_eq!(x.len(), a.len(), "dot4: length mismatch (a)");
    assert_eq!(x.len(), b.len(), "dot4: length mismatch (b)");
    assert_eq!(x.len(), c.len(), "dot4: length mismatch (c)");
    assert_eq!(x.len(), d.len(), "dot4: length mismatch (d)");
    let mut da = 0.0;
    let mut db = 0.0;
    let mut dc = 0.0;
    let mut dd = 0.0;
    for i in 0..x.len() {
        let xi = x[i];
        da += xi * a[i];
        db += xi * b[i];
        dc += xi * c[i];
        dd += xi * d[i];
    }
    [da, db, dc, dd]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms_agree() {
        let x = [3.0, 4.0];
        assert_eq!(norm2_sq(&x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn clip_leaves_short_vectors_alone() {
        let mut x = vec![0.3, 0.4];
        let f = clip_l2(&mut x, 1.0);
        assert_eq!(f, 1.0);
        assert_eq!(x, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_rescales_long_vectors_to_threshold() {
        let mut x = vec![3.0, 4.0];
        let f = clip_l2(&mut x, 1.0);
        assert!((f - 0.2).abs() < 1e-12);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        // Direction is preserved.
        assert!((x[0] / x[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clip_boundary_exactly_at_threshold() {
        let mut x = vec![1.0, 0.0];
        assert_eq!(clip_l2(&mut x, 1.0), 1.0);
        assert_eq!(x, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn clip_rejects_nonpositive_threshold() {
        clip_l2(&mut [1.0], 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn dist_sq_matches_norm_of_difference() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert_eq!(dist_sq(&x, &y), norm2_sq(&sub(&x, &y)));
    }

    #[test]
    fn hadamard_elementwise() {
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.0, 2.0];
        let y = [0.5, -0.5];
        assert_eq!(sub(&add(&x, &y), &y), x.to_vec());
    }

    #[test]
    fn zero_clears() {
        let mut x = vec![1.0, 2.0];
        zero(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn fused_axpy_scale_bitwise_matches_two_pass() {
        // The trainer relies on this kernel being a drop-in for
        // axpy-then-scale; check bit equality on awkward values.
        let y0: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).cos() / 3.0).collect();
        let (alpha, beta) = (7.0, 1.0 / 7.0);
        let mut two_pass = y0.clone();
        axpy(alpha, &x, &mut two_pass);
        scale(&mut two_pass, beta);
        let mut fused = y0;
        fused_axpy_scale(&mut fused, alpha, &x, beta);
        for (a, b) in fused.iter().zip(&two_pass) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dot2_bitwise_matches_two_dots() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64).sqrt() - 5.0).collect();
        let a: Vec<f64> = (0..128).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let b: Vec<f64> = (0..128).map(|i| (i as f64 * 0.9).tan()).collect();
        let (da, db) = dot2(&x, &a, &b);
        assert_eq!(da.to_bits(), dot(&x, &a).to_bits());
        assert_eq!(db.to_bits(), dot(&x, &b).to_bits());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot2_mismatch_panics() {
        dot2(&[1.0], &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn scaled_copy() {
        assert_eq!(scaled(2.0, &[1.0, -3.0]), vec![2.0, -6.0]);
    }

    #[test]
    fn dot4_bitwise_matches_four_dots() {
        let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..96).map(|i| ((i + r * 31) as f64).cos() / 7.0).collect())
            .collect();
        let got = dot4(&x, &rows[0], &rows[1], &rows[2], &rows[3]);
        for (g, row) in got.iter().zip(&rows) {
            assert_eq!(g.to_bits(), dot(&x, row).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot4_mismatch_panics() {
        dot4(&[1.0], &[1.0], &[1.0], &[1.0], &[1.0, 2.0]);
    }
}
