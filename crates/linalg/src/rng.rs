//! Seeded randomness helpers.
//!
//! Every stochastic component in the workspace (graph generation, edge
//! sampling, noise injection, initialisation) takes an explicit RNG so that
//! experiments are reproducible from a single `u64` seed. This module
//! centralises RNG construction and Gaussian sampling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix::DenseMatrix;

/// Creates the workspace-standard RNG from a `u64` seed.
///
/// `SmallRng` is a fast, non-cryptographic generator; DP noise quality in a
/// *research reproduction* does not require a CSPRNG, and determinism across
/// runs matters more for regenerating the paper's tables.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Captures the full internal state of a workspace RNG (four xoshiro256++
/// words) for checkpointing; [`rng_from_state`] restores it.
///
/// # Examples
/// ```
/// use advsgm_linalg::rng::{rng_from_state, rng_state, seeded};
/// use rand::Rng;
///
/// let mut a = seeded(7);
/// let _ = a.gen::<u64>(); // advance
/// let mut b = rng_from_state(rng_state(&a));
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // identical stream resumes
/// ```
pub fn rng_state(rng: &SmallRng) -> [u64; 4] {
    rng.state()
}

/// Rebuilds an RNG from a state captured by [`rng_state`], resuming the
/// exact output stream — the primitive behind bitwise-exact training
/// checkpoint/resume.
pub fn rng_from_state(state: [u64; 4]) -> SmallRng {
    SmallRng::from_state(state)
}

/// Derives a stream of independent sub-seeds from a master seed.
///
/// Uses SplitMix64, the standard seed-expansion permutation, so that
/// sub-seeded RNGs do not share low-entropy prefixes.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one sample from `N(0, std^2)` using Box–Muller.
///
/// We hand-roll the transform instead of pulling in `rand_distr`, keeping the
/// dependency set to the sanctioned crates.
#[inline]
pub fn gaussian(rng: &mut impl Rng, std: f64) -> f64 {
    debug_assert!(std >= 0.0, "standard deviation must be non-negative");
    if std == 0.0 {
        return 0.0;
    }
    // Box-Muller: u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    std * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills `out` with i.i.d. `N(0, std^2)` samples.
pub fn gaussian_fill(rng: &mut impl Rng, std: f64, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = gaussian(rng, std);
    }
}

/// Returns a fresh vector of `n` i.i.d. `N(0, std^2)` samples.
pub fn gaussian_vec(rng: &mut impl Rng, std: f64, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    gaussian_fill(rng, std, &mut out);
    out
}

/// Returns a `rows x cols` matrix of i.i.d. `N(0, std^2)` samples.
pub fn gaussian_matrix(rng: &mut impl Rng, std: f64, rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    gaussian_fill(rng, std, m.as_mut_slice());
    m
}

/// Uniform sample in `[lo, hi)`.
#[inline]
pub fn uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xa: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn gaussian_zero_std_is_zero() {
        let mut rng = seeded(3);
        assert_eq!(gaussian(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn gaussian_moments_roughly_correct() {
        let mut rng = seeded(4);
        let n = 200_000;
        let std = 2.5;
        let xs = gaussian_vec(&mut rng, std, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - std).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn gaussian_matrix_shape() {
        let mut rng = seeded(5);
        let m = gaussian_matrix(&mut rng, 1.0, 3, 4);
        assert_eq!(m.shape(), (3, 4));
        // Not all zero (overwhelmingly likely).
        assert!(m.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded(6);
        for _ in 0..100 {
            let v = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
