//! Error type for linear-algebra operations.

use std::fmt;

/// Errors produced by shape-checked linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the failing operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols); vectors use `(len, 1)`.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// An index was out of bounds for the container.
    IndexOutOfBounds {
        /// Which axis the index addressed.
        axis: &'static str,
        /// The offending index.
        index: usize,
        /// The container extent along that axis.
        len: usize,
    },
    /// A parameter was outside its legal domain (e.g. a non-positive bound).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::IndexOutOfBounds { axis, index, len } => {
                write!(f, "{axis} index {index} out of bounds for length {len}")
            }
            LinalgError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "dot",
            lhs: (3, 1),
            rhs: (4, 1),
        };
        let s = e.to_string();
        assert!(s.contains("dot"));
        assert!(s.contains("3x1"));
        assert!(s.contains("4x1"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::IndexOutOfBounds {
            axis: "row",
            index: 9,
            len: 3,
        });
        assert!(e.to_string().contains("row index 9"));
    }
}
