//! Parameter initialisation.
//!
//! Two details matter for reproducing the paper:
//!
//! 1. Skip-gram embedding matrices are initialised with small uniform values
//!    (the word2vec/LINE convention `U(-0.5/r, 0.5/r)`), and
//! 2. the skip-gram parameters are **row-normalised** so that the gradient
//!    clipping constant can be fixed at `C = 1` (Section VI-A: "We normalize
//!    the parameters of skip-gram module in AdvSGM to ensure that C = 1").

use rand::Rng;

use crate::matrix::DenseMatrix;
use crate::vector;

/// Xavier/Glorot uniform initialisation: `U(-sqrt(6/(fan_in+fan_out)), +...)`.
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> DenseMatrix {
    let bound = (6.0 / (rows + cols) as f64).sqrt();
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
}

/// word2vec-style embedding initialisation: `U(-0.5/cols, 0.5/cols)`.
pub fn embedding_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> DenseMatrix {
    let bound = 0.5 / cols as f64;
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
}

/// Uniform initialisation over a caller-specified symmetric interval.
pub fn uniform_symmetric(rng: &mut impl Rng, rows: usize, cols: usize, bound: f64) -> DenseMatrix {
    assert!(bound > 0.0, "uniform bound must be positive");
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
}

/// Normalises every row of `m` to unit L2 norm in place (zero rows are left
/// untouched). This is the paper's `C = 1` normalisation.
pub fn normalize_rows(m: &mut DenseMatrix) {
    for i in 0..m.rows() {
        vector::normalize(m.row_mut(i));
    }
}

/// Projects every row of `m` onto the L2 ball of radius `c` (rows already
/// inside the ball are untouched). Used to *maintain* `||v|| <= C` during
/// training if configured.
pub fn project_rows_to_ball(m: &mut DenseMatrix, c: f64) {
    assert!(c > 0.0, "ball radius must be positive");
    for i in 0..m.rows() {
        vector::clip_l2(m.row_mut(i), c);
    }
}

/// Maximum row L2 norm of `m` (0.0 for an empty matrix).
pub fn max_row_norm(m: &DenseMatrix) -> f64 {
    m.rows_iter().map(vector::norm2).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn xavier_values_within_bound() {
        let mut rng = seeded(1);
        let m = xavier_uniform(&mut rng, 10, 30);
        let bound = (6.0 / 40.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn embedding_uniform_small_values() {
        let mut rng = seeded(2);
        let m = embedding_uniform(&mut rng, 5, 128);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5 / 128.0));
        assert!(m.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn normalize_rows_gives_unit_rows() {
        let mut rng = seeded(3);
        let mut m = xavier_uniform(&mut rng, 6, 9);
        normalize_rows(&mut m);
        for row in m.rows_iter() {
            assert!((vector::norm2(row) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_rows_skips_zero_rows() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[3.0, 0.0, 4.0]);
        normalize_rows(&mut m);
        assert!((vector::norm2(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn project_rows_caps_norms() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(0).copy_from_slice(&[3.0, 4.0]); // norm 5
        m.row_mut(1).copy_from_slice(&[0.1, 0.1]); // norm < 1
        project_rows_to_ball(&mut m, 1.0);
        assert!((vector::norm2(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.1, 0.1]);
    }

    #[test]
    fn max_row_norm_reports_largest() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(0).copy_from_slice(&[3.0, 4.0]);
        m.row_mut(1).copy_from_slice(&[1.0, 0.0]);
        assert_eq!(max_row_norm(&m), 5.0);
    }
}
