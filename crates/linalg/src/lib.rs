//! # advsgm-linalg
//!
//! Dense linear-algebra substrate for the AdvSGM workspace.
//!
//! The AdvSGM model (ICDE 2025) is shallow — two embedding matrices plus two
//! single-layer generators — so every gradient in the paper has a closed form.
//! This crate provides exactly the numeric toolkit those closed forms need:
//!
//! * [`vector`] — slice-level BLAS-1 style kernels, including the DPSGD
//!   [`vector::clip_l2`] operation from Eq. (5) of the paper;
//! * [`matrix`] — a row-major [`matrix::DenseMatrix`] with cheap row views,
//!   used for the embedding matrices `W_in` / `W_out` and generator weights;
//! * [`activations`] — numerically stable sigmoids plus the paper's
//!   Algorithm 1 *exponential clipping* and the constrained sigmoid `S(x)`;
//! * [`init`] — Xavier/uniform initialisation and the row normalisation the
//!   paper uses to pin the clipping constant at `C = 1`;
//! * [`optim`] — SGD / momentum / Adam with row-sparse updates, matching the
//!   one-hot structure of skip-gram gradients;
//! * [`rng`] — seeded RNG construction and Gaussian draws;
//! * [`stats`] — summary statistics used by the experiment tables;
//! * [`topk`] — bounded-heap top-k selection over fused row-score scans,
//!   the serving-side kernel behind `advsgm-store` neighbor queries;
//! * [`backend`] — runtime CPU-feature dispatch over the hot kernel
//!   surface: explicit AVX2/NEON paths with the scalar loops as the
//!   always-available reference, bitwise-identical on the training tier.
//!
//! Everything is `f64` and allocation-conscious. `unsafe` is denied
//! crate-wide and allowed only inside [`backend`]'s per-architecture
//! intrinsics modules, each function carrying an explicit `# Safety`
//! contract under `deny(unsafe_op_in_unsafe_fn)`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
pub mod backend;
pub mod error;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod rng;
pub mod stats;
pub mod topk;
pub mod vector;

pub use error::LinalgError;
pub use matrix::DenseMatrix;
