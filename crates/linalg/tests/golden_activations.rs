//! Golden-value tests for the stable sigmoid and Algorithm-1 exponential
//! clipping: literal expected values, monotonicity sweeps over wide grids,
//! bound saturation, and NaN-freedom at the extremes of `f64`.

use advsgm_linalg::activations::{exp_clip, exp_clip_sharp, sigmoid, ConstrainedSigmoid};

const TOL: f64 = 1e-12;

// ---- stable sigmoid --------------------------------------------------------

#[test]
fn sigmoid_golden_values() {
    // 1/(1+e^{-x}) evaluated exactly.
    assert!((sigmoid(0.0) - 0.5).abs() < TOL);
    assert!((sigmoid(1.0) - 0.731_058_578_630_004_9).abs() < TOL);
    assert!((sigmoid(-1.0) - 0.268_941_421_369_995_1).abs() < TOL);
    assert!((sigmoid(2.5) - 0.924_141_819_978_756_6).abs() < TOL);
    assert!((sigmoid(-2.5) - (1.0 - 0.924_141_819_978_756_6)).abs() < TOL);
}

#[test]
fn sigmoid_no_nan_and_saturation_at_f64_extremes() {
    for &x in &[
        f64::MAX,
        f64::MIN,
        1e308,
        -1e308,
        710.0,
        -710.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        let s = sigmoid(x);
        assert!(!s.is_nan(), "sigmoid({x}) is NaN");
        assert!((0.0..=1.0).contains(&s), "sigmoid({x}) = {s} out of [0,1]");
    }
    assert_eq!(sigmoid(f64::INFINITY), 1.0);
    assert_eq!(sigmoid(f64::NEG_INFINITY), 0.0);
}

#[test]
fn sigmoid_monotone_over_wide_grid() {
    let mut prev = -1.0;
    let mut x = -800.0;
    while x <= 800.0 {
        let s = sigmoid(x);
        assert!(s >= prev, "sigmoid not monotone at x={x}");
        prev = s;
        x += 0.25;
    }
}

// ---- Algorithm 1: exponential clipping -------------------------------------

const A: f64 = 1e-5;
const B: f64 = 120.0;

#[test]
fn exp_clip_golden_midpoint() {
    // Far from both corners the wide-corner clip is x plus two tiny corner
    // terms; at x = 60 (paper bounds) the hand-evaluated value is
    // 60 + e^{-c|60-a|}/(2c) - e^{-c|60-b|}/(2c) = 60.00000061395962
    // with c = (1/(2 c_tanh)) / ((b-a)/2) = 0.03495440332507799.
    let v = exp_clip(60.0, Some(A), Some(B));
    assert!((v - 60.000_000_613_959_62).abs() < 1e-9, "v={v}");
}

#[test]
fn exp_clip_sharp_golden_at_zero() {
    // Sharp variant at x = 0: clamp(0) = a, corner term e^{-c a}/(2c) with
    // c = 125.83583099763963, giving 0.003978434209766475 — the value that
    // makes ConstrainedSigmoid's supremum approach 1 (Section VI-A).
    let v = exp_clip_sharp(0.0, Some(A), Some(B));
    assert!((v - 0.003_978_434_209_766_475).abs() < 1e-12, "v={v}");
}

#[test]
fn exp_clip_saturates_at_both_bounds() {
    // Deep below a and far above b, both variants sit on the bound to
    // within the (exponentially vanishing) corner term.
    for clip in [exp_clip, exp_clip_sharp] {
        let lo = clip(-1e6, Some(A), Some(B));
        assert!((lo - A).abs() < 1e-9, "lower saturation: {lo}");
        let hi = clip(1e9, Some(A), Some(B));
        assert!((hi - B).abs() < 1e-9, "upper saturation: {hi}");
    }
}

#[test]
fn exp_clip_no_nan_at_extreme_inputs() {
    for clip in [exp_clip, exp_clip_sharp] {
        for &x in &[
            f64::MAX,
            f64::MIN,
            1e308,
            -1e308,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let v = clip(x, Some(A), Some(B));
            assert!(!v.is_nan(), "clip({x}) is NaN");
            assert!(v.is_finite(), "clip({x}) = {v} not finite");
        }
    }
    assert!((exp_clip(f64::INFINITY, Some(A), Some(B)) - B).abs() < 1e-9);
    assert!((exp_clip(f64::NEG_INFINITY, Some(A), Some(B)) - A).abs() < 1e-9);
}

#[test]
fn exp_clip_monotone_across_corners() {
    // Dense sweep straddling both corners plus huge jumps at the ends.
    for clip in [exp_clip, exp_clip_sharp] {
        let mut prev = f64::NEG_INFINITY;
        let mut xs: Vec<f64> = vec![-1e300, -1e9, -1e3];
        let mut x = -2.0;
        while x <= 140.0 {
            xs.push(x);
            x += 0.01;
        }
        xs.extend_from_slice(&[1e3, 1e9, 1e300]);
        for &x in &xs {
            let v = clip(x, Some(A), Some(B));
            assert!(v >= prev - 1e-12, "not monotone at x={x}: {v} < {prev}");
            prev = v;
        }
    }
}

#[test]
fn exp_clip_overshoot_bounded_by_corner_constant() {
    // |softclip(x) - clamp(x)| <= 1/(2c) everywhere (one corner term can
    // push past a bound by at most its own magnitude).
    let c_tanh = 2.0 / (2.0f64.exp() + 1.0);
    let c_wide = 1.0 / (2.0 * c_tanh) / ((B - A) / 2.0);
    let over = 1.0 / (2.0 * c_wide);
    let mut x = -50.0;
    while x <= 250.0 {
        let v = exp_clip(x, Some(A), Some(B));
        assert!(v >= A - over - 1e-12, "x={x}: {v}");
        assert!(v <= B + over + 1e-12, "x={x}: {v}");
        x += 0.1;
    }
}

// ---- constrained sigmoid built on the clip ---------------------------------

#[test]
fn constrained_sigmoid_golden_range() {
    let s = ConstrainedSigmoid::PAPER_DEFAULT;
    // Floor is exactly 1/(1+b) = 1/121.
    assert!((s.min_value() - 1.0 / 121.0).abs() < TOL);
    // Ceiling is 1/(1 + sharp_clip(0)) with the golden clip value above.
    let expected_max = 1.0 / (1.0 + 0.003_978_434_209_766_475);
    assert!((s.max_value() - expected_max).abs() < 1e-12);
    assert!(s.max_value() > 0.996, "max={}", s.max_value());
}

#[test]
fn constrained_sigmoid_no_nan_at_extremes() {
    let s = ConstrainedSigmoid::PAPER_DEFAULT;
    for &x in &[
        f64::MAX,
        f64::MIN,
        1e308,
        -1e308,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        let v = s.eval(x);
        assert!(!v.is_nan(), "S({x}) is NaN");
        assert!(
            (s.min_value() - 1e-12..=s.max_value() + 1e-12).contains(&v),
            "S({x}) = {v} outside [{}, {}]",
            s.min_value(),
            s.max_value()
        );
        let l = s.inverse_weight(x);
        assert!(!l.is_nan() && l.is_finite(), "lambda({x}) = {l}");
    }
}
