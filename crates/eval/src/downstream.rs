//! The contract between embedding producers and evaluators.

use advsgm_graph::NodeId;
use advsgm_linalg::DenseMatrix;

/// Anything that exposes one embedding row per node.
///
/// Implemented by AdvSGM, the skip-gram ablations, and every baseline, so
/// the evaluators never care where the vectors came from — exactly the
/// post-processing boundary of Theorem 5: any `f` consuming the released
/// embedding matrix keeps the model's `(epsilon, delta)` guarantee.
pub trait EmbeddingSource {
    /// Embedding dimension `r`.
    fn dim(&self) -> usize;

    /// Number of embedded nodes.
    fn num_nodes(&self) -> usize;

    /// The embedding of `node`.
    fn embedding(&self, node: NodeId) -> &[f64];

    /// Pair score used for link prediction: the inner product (AUC is
    /// invariant to the sigmoid that the paper's discriminant applies).
    fn score(&self, u: NodeId, v: NodeId) -> f64 {
        let a = self.embedding(u);
        let b = self.embedding(v);
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

impl EmbeddingSource for DenseMatrix {
    fn dim(&self) -> usize {
        self.cols()
    }

    fn num_nodes(&self) -> usize {
        self.rows()
    }

    fn embedding(&self, node: NodeId) -> &[f64] {
        self.row(node.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_is_a_source() {
        let mut m = DenseMatrix::zeros(3, 2);
        m.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        m.row_mut(1).copy_from_slice(&[0.0, 1.0]);
        m.row_mut(2).copy_from_slice(&[1.0, 1.0]);
        assert_eq!(m.dim(), 2);
        assert_eq!(EmbeddingSource::num_nodes(&m), 3);
        assert_eq!(m.embedding(NodeId(2)), &[1.0, 1.0]);
        assert_eq!(m.score(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(m.score(NodeId(0), NodeId(2)), 1.0);
    }
}
