//! Area under the ROC curve.
//!
//! Computed via the Mann–Whitney U statistic with midrank tie handling:
//! `AUC = P(score_pos > score_neg) + 0.5 P(score_pos = score_neg)`,
//! which is exact (no threshold discretisation) and O(n log n).

use crate::error::EvalError;

/// AUC from positive- and negative-class scores.
///
/// # Errors
/// Returns [`EvalError::InvalidInput`] if either class is empty or any
/// score is NaN.
pub fn auc_from_scores(pos: &[f64], neg: &[f64]) -> Result<f64, EvalError> {
    if pos.is_empty() || neg.is_empty() {
        return Err(EvalError::InvalidInput {
            reason: format!(
                "AUC needs both classes non-empty (pos={}, neg={})",
                pos.len(),
                neg.len()
            ),
        });
    }
    if pos.iter().chain(neg).any(|v| v.is_nan()) {
        return Err(EvalError::InvalidInput {
            reason: "NaN score".into(),
        });
    }
    // Pool and sort by score; assign midranks to ties; AUC from rank sum.
    let n_pos = pos.len();
    let n_neg = neg.len();
    let mut pool: Vec<(f64, bool)> = pos
        .iter()
        .map(|&s| (s, true))
        .chain(neg.iter().map(|&s| (s, false)))
        .collect();
    pool.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN after check"));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < pool.len() {
        let mut j = i;
        while j + 1 < pool.len() && pool[j + 1].0 == pool[i].0 {
            j += 1;
        }
        // Ranks are 1-based; ties share the midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pool[i..=j] {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Ok(u / (n_pos as f64 * n_neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let auc = auc_from_scores(&[0.9, 0.8, 0.7], &[0.3, 0.2, 0.1]).unwrap();
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let auc = auc_from_scores(&[0.1, 0.2], &[0.8, 0.9]).unwrap();
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn identical_scores_give_half() {
        let auc = auc_from_scores(&[0.5, 0.5], &[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn known_mixed_case() {
        // pos = {0.8, 0.4}, neg = {0.6, 0.2}:
        // pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
        let auc = auc_from_scores(&[0.8, 0.4], &[0.6, 0.2]).unwrap();
        assert_eq!(auc, 0.75);
    }

    #[test]
    fn ties_counted_half() {
        // pos = {0.5}, neg = {0.5, 0.1}: 0.5 tie (0.5) + win over 0.1 (1) -> 0.75.
        let auc = auc_from_scores(&[0.5], &[0.5, 0.1]).unwrap();
        assert_eq!(auc, 0.75);
    }

    #[test]
    fn monotone_transform_invariance() {
        let pos = [0.9, 0.3, 0.5];
        let neg = [0.4, 0.1];
        let a1 = auc_from_scores(&pos, &neg).unwrap();
        let tp: Vec<f64> = pos.iter().map(|x| (5.0 * x).exp()).collect();
        let tn: Vec<f64> = neg.iter().map(|x| (5.0 * x).exp()).collect();
        let a2 = auc_from_scores(&tp, &tn).unwrap();
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn random_scores_near_half() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1);
        let pos: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        let neg: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        let auc = auc_from_scores(&pos, &neg).unwrap();
        assert!((auc - 0.5).abs() < 0.02, "auc={auc}");
    }

    #[test]
    fn empty_class_rejected() {
        assert!(auc_from_scores(&[], &[0.1]).is_err());
        assert!(auc_from_scores(&[0.1], &[]).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(auc_from_scores(&[f64::NAN], &[0.1]).is_err());
    }

    #[test]
    fn complement_symmetry() {
        // Swapping classes gives 1 - AUC.
        let pos = [0.8, 0.4, 0.6];
        let neg = [0.5, 0.3];
        let a = auc_from_scores(&pos, &neg).unwrap();
        let b = auc_from_scores(&neg, &pos).unwrap();
        assert!((a + b - 1.0).abs() < 1e-12);
    }
}
