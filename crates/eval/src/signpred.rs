//! Sign (polarity) prediction evaluation — the signed-graph workload of
//! arXiv 2512.00307.
//!
//! Protocol: hold out a stratified share of a signed graph's edges
//! ([`advsgm_graph::partition::sign_prediction_split`]), train on the
//! rest, then score every held-out edge by embedding inner product and
//! measure how well friend edges rank above foe edges (AUC). A sign-aware
//! model pulls friend endpoints together and pushes foe endpoints apart,
//! so its dot products separate the classes; a sign-blind model treats
//! every edge as attraction and lands near chance on balanced polarity.

use advsgm_graph::partition::SignPredictionSplit;
use advsgm_graph::Edge;

use crate::auc::auc_from_scores;
use crate::downstream::EmbeddingSource;
use crate::error::EvalError;
use crate::linkpred::score_pairs;

/// AUC of `source` on held-out friend edges (positive class) versus
/// held-out foe edges (negative class).
///
/// # Errors
/// Propagates [`auc_from_scores`] validation errors (either class empty,
/// non-finite scores).
pub fn sign_prediction_auc(
    source: &impl EmbeddingSource,
    test_friend: &[Edge],
    test_foe: &[Edge],
) -> Result<f64, EvalError> {
    let friend = score_pairs(source, test_friend);
    let foe = score_pairs(source, test_foe);
    auc_from_scores(&friend, &foe)
}

/// Convenience wrapper over a full [`SignPredictionSplit`].
///
/// # Errors
/// Propagates [`auc_from_scores`] validation errors.
pub fn evaluate_sign_split(
    source: &impl EmbeddingSource,
    split: &SignPredictionSplit,
) -> Result<f64, EvalError> {
    sign_prediction_auc(source, &split.test_friend, &split.test_foe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::sbm::SbmConfig;
    use advsgm_graph::generators::signed::{signed_sbm, SignedSbmConfig};
    use advsgm_graph::partition::sign_prediction_split;
    use advsgm_graph::Graph;
    use advsgm_linalg::DenseMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn planted() -> Graph {
        signed_sbm(
            &SignedSbmConfig {
                base: SbmConfig {
                    num_nodes: 120,
                    num_edges: 600,
                    num_blocks: 2,
                    mixing: 0.4,
                    degree_exponent: 2.5,
                },
                flip_probability: 0.0,
            },
            &mut SmallRng::seed_from_u64(3),
        )
    }

    /// Oracle embeddings from the planted blocks: same-block dot products
    /// are +1, cross-block -1 — exactly the polarity structure.
    fn block_oracle(g: &Graph) -> DenseMatrix {
        let labels = g.labels().unwrap();
        let mut m = DenseMatrix::zeros(g.num_nodes(), 1);
        for (i, &b) in labels.iter().enumerate() {
            m.set(i, 0, if b == 0 { 1.0 } else { -1.0 });
        }
        m
    }

    #[test]
    fn block_oracle_separates_perfectly_at_zero_flip() {
        let g = planted();
        let split = sign_prediction_split(&g, 0.2, &mut SmallRng::seed_from_u64(5)).unwrap();
        let auc = evaluate_sign_split(&block_oracle(&g), &split).unwrap();
        assert!(auc > 0.99, "oracle sign AUC {auc}");
    }

    #[test]
    fn random_embeddings_near_chance() {
        let g = planted();
        let split = sign_prediction_split(&g, 0.2, &mut SmallRng::seed_from_u64(5)).unwrap();
        let mut total = 0.0;
        let runs = 20;
        for s in 0..runs {
            let mut r = SmallRng::seed_from_u64(400 + s);
            let m = advsgm_linalg::rng::gaussian_matrix(&mut r, 1.0, g.num_nodes(), 8);
            total += evaluate_sign_split(&m, &split).unwrap();
        }
        let mean = total / runs as f64;
        assert!((mean - 0.5).abs() < 0.12, "mean sign AUC {mean}");
    }

    #[test]
    fn empty_class_is_a_typed_error() {
        let m = DenseMatrix::zeros(4, 2);
        let friends = vec![Edge::from_raw(0, 1)];
        assert!(sign_prediction_auc(&m, &friends, &[]).is_err());
    }
}
