//! Node clustering evaluation.
//!
//! The paper feeds embeddings to **Affinity Propagation** (Frey & Dueck,
//! Science 2007) and reports **mutual information** between the discovered
//! clusters and the class labels. [`affinity`] implements AP from scratch;
//! [`kmeans`](mod@kmeans) provides a cheaper reference clusterer; [`metrics`] has MI,
//! NMI and ARI.

pub mod affinity;
pub mod kmeans;
pub mod metrics;

pub use affinity::{AffinityPropagation, ApParams};
pub use kmeans::kmeans;
pub use metrics::{adjusted_rand_index, mutual_information, normalized_mutual_information};
