//! k-means with k-means++ seeding.
//!
//! A cheap O(nkr)-per-iteration reference clusterer: used in tests to
//! cross-check Affinity Propagation and available to users who know `k`.

use advsgm_linalg::vector;
use rand::Rng;

use crate::error::EvalError;

/// Lloyd's algorithm with k-means++ initialisation. Returns `(assignments,
/// centroids)`.
///
/// # Errors
/// Returns [`EvalError::InvalidInput`] if `k == 0`, `k > n`, or points have
/// inconsistent dimensions.
pub fn kmeans(
    points: &[&[f64]],
    k: usize,
    max_iter: usize,
    rng: &mut impl Rng,
) -> Result<(Vec<usize>, Vec<Vec<f64>>), EvalError> {
    let n = points.len();
    if k == 0 || k > n {
        return Err(EvalError::InvalidInput {
            reason: format!("k={k} invalid for {n} points"),
        });
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(EvalError::InvalidInput {
            reason: "inconsistent point dimensions".into(),
        });
    }

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].to_vec());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| vector::dist_sq(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].to_vec());
        for (i, p) in points.iter().enumerate() {
            let d = vector::dist_sq(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..max_iter {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = vector::dist_sq(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update step.
        let mut counts = vec![0usize; k];
        let mut sums = vec![vec![0.0f64; dim]; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            vector::add_assign(&mut sums[assignments[i]], p);
        }
        for c in 0..k {
            if counts[c] > 0 {
                for v in sums[c].iter_mut() {
                    *v /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            } else {
                // Re-seed an empty cluster at a random point.
                centroids[c] = points[rng.gen_range(0..n)].to_vec();
            }
        }
    }
    Ok((assignments, centroids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn separates_two_blobs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for i in 0..40 {
            let base = if i < 20 { 0.0 } else { 50.0 };
            pts.push(vec![
                base + advsgm_linalg::rng::gaussian(&mut rng, 1.0),
                base + advsgm_linalg::rng::gaussian(&mut rng, 1.0),
            ]);
        }
        let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let (assign, centroids) = kmeans(&views, 2, 100, &mut rng).unwrap();
        assert_eq!(centroids.len(), 2);
        // All first-20 together, all last-20 together.
        assert!(assign[..20].iter().all(|&a| a == assign[0]));
        assert!(assign[20..].iter().all(|&a| a == assign[20]));
        assert_ne!(assign[0], assign[20]);
    }

    #[test]
    fn k_equals_n_each_point_own_cluster() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = [vec![0.0], vec![10.0], vec![20.0]];
        let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let (assign, _) = kmeans(&views, 3, 50, &mut rng).unwrap();
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn invalid_k_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = vec![0.0];
        assert!(kmeans(&[p.as_slice()], 0, 10, &mut rng).is_err());
        assert!(kmeans(&[p.as_slice()], 2, 10, &mut rng).is_err());
    }

    #[test]
    fn mismatched_dims_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = vec![0.0, 1.0];
        let b = vec![0.0];
        assert!(kmeans(&[a.as_slice(), b.as_slice()], 1, 10, &mut rng).is_err());
    }
}
