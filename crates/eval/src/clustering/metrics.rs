//! Clustering quality metrics.
//!
//! The paper reports **mutual information** (MI, in nats) between cluster
//! assignments and ground-truth classes, following its reference \[21\].
//! NMI and ARI are provided for completeness.

use std::collections::HashMap;

use crate::error::EvalError;

/// Joint counts, row marginals, and column marginals of two labelings.
type Contingency = (
    HashMap<(usize, usize), f64>,
    HashMap<usize, f64>,
    HashMap<usize, f64>,
);

/// Joint contingency counts between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> Contingency {
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut ma: HashMap<usize, f64> = HashMap::new();
    let mut mb: HashMap<usize, f64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_default() += 1.0;
        *ma.entry(x).or_default() += 1.0;
        *mb.entry(y).or_default() += 1.0;
    }
    (joint, ma, mb)
}

/// Mutual information (nats) between two labelings of the same points.
///
/// # Errors
/// Returns [`EvalError::InvalidInput`] on empty or mismatched inputs.
pub fn mutual_information(a: &[usize], b: &[usize]) -> Result<f64, EvalError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(EvalError::InvalidInput {
            reason: format!(
                "labelings must be equal-length non-empty ({} vs {})",
                a.len(),
                b.len()
            ),
        });
    }
    let n = a.len() as f64;
    let (joint, ma, mb) = contingency(a, b);
    let mut mi = 0.0;
    for (&(x, y), &nxy) in &joint {
        let pxy = nxy / n;
        let px = ma[&x] / n;
        let py = mb[&y] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    Ok(mi.max(0.0)) // clamp away -0.0 / tiny negative rounding
}

/// Shannon entropy (nats) of a labeling.
fn entropy(a: &[usize]) -> f64 {
    let n = a.len() as f64;
    let mut counts: HashMap<usize, f64> = HashMap::new();
    for &x in a {
        *counts.entry(x).or_default() += 1.0;
    }
    -counts
        .values()
        .map(|&c| {
            let p = c / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Normalized mutual information: `MI / sqrt(H(a) H(b))`; 0 when either
/// labeling is constant.
///
/// # Errors
/// See [`mutual_information`].
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> Result<f64, EvalError> {
    let mi = mutual_information(a, b)?;
    let ha = entropy(a);
    let hb = entropy(b);
    if ha <= 0.0 || hb <= 0.0 {
        return Ok(0.0);
    }
    Ok((mi / (ha * hb).sqrt()).clamp(0.0, 1.0))
}

/// Adjusted Rand index in `[-1, 1]`.
///
/// # Errors
/// See [`mutual_information`].
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64, EvalError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(EvalError::InvalidInput {
            reason: "labelings must be equal-length non-empty".into(),
        });
    }
    let choose2 = |x: f64| x * (x - 1.0) / 2.0;
    let n = a.len() as f64;
    let (joint, ma, mb) = contingency(a, b);
    let sum_ij: f64 = joint.values().map(|&v| choose2(v)).sum();
    let sum_a: f64 = ma.values().map(|&v| choose2(v)).sum();
    let sum_b: f64 = mb.values().map(|&v| choose2(v)).sum();
    let expected = sum_a * sum_b / choose2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-15 {
        return Ok(0.0);
    }
    Ok((sum_ij - expected) / (max_index - expected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_mi_equals_entropy() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let mi = mutual_information(&a, &a).unwrap();
        assert!((mi - (3.0f64).ln()).abs() < 1e-12, "mi={mi}");
        assert!((normalized_mutual_information(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_labelings_mi_zero() {
        // b is constant -> knows nothing about a.
        let a = vec![0, 1, 0, 1];
        let b = vec![0, 0, 0, 0];
        assert_eq!(mutual_information(&a, &b).unwrap(), 0.0);
        assert_eq!(normalized_mutual_information(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn perfectly_anticorrelated_still_full_information() {
        // Relabeling clusters must not change MI.
        let a = vec![0, 0, 1, 1];
        let b = vec![1, 1, 0, 0];
        assert!((mutual_information(&a, &b).unwrap() - (2.0f64).ln()).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_labelings_zero_mi() {
        // Exactly balanced independent split: MI is 0; ARI is -0.5 here
        // (a perfect crossing is *worse* than chance agreement).
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        assert!(mutual_information(&a, &b).unwrap().abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b).unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn mi_symmetric() {
        let a = vec![0, 1, 2, 0, 1, 1, 2];
        let b = vec![1, 1, 0, 0, 2, 1, 0];
        let ab = mutual_information(&a, &b).unwrap();
        let ba = mutual_information(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn mi_bounded_by_entropies() {
        let a = vec![0, 1, 2, 0, 1, 1, 2, 2, 0];
        let b = vec![1, 1, 0, 0, 2, 1, 0, 2, 2];
        let mi = mutual_information(&a, &b).unwrap();
        assert!(mi <= entropy(&a) + 1e-12);
        assert!(mi <= entropy(&b) + 1e-12);
        assert!(mi >= 0.0);
    }

    #[test]
    fn partial_agreement_between_zero_and_full() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1]; // one point moved
        let mi = mutual_information(&a, &b).unwrap();
        assert!(mi > 0.0 && mi < (2.0f64).ln());
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari > 0.0 && ari < 1.0);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        assert!(mutual_information(&[0], &[0, 1]).is_err());
        assert!(mutual_information(&[], &[]).is_err());
        assert!(adjusted_rand_index(&[0], &[]).is_err());
    }
}
