//! Affinity Propagation (Frey & Dueck 2007).
//!
//! Message-passing clustering: every pair of points exchanges
//! *responsibilities* `r(i,k)` (how well k would serve as i's exemplar) and
//! *availabilities* `a(i,k)` (how appropriate it is for i to pick k),
//! updated with damping until the exemplar set is stable. The number of
//! clusters is not fixed in advance; it emerges from the *preference*
//! `s(k,k)` (we default to the median similarity, the authors' suggestion).
//!
//! Memory is O(n^2); [`ApParams::max_points`] subsamples larger inputs
//! (evaluation is on the sampled nodes' labels), which is how the paper's
//! Blog-scale clustering stays tractable on one machine.

use advsgm_linalg::vector;
use rand::Rng;

use crate::error::EvalError;

/// Affinity Propagation hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApParams {
    /// Damping factor in `[0.5, 1)`.
    pub damping: f64,
    /// Maximum message-passing iterations.
    pub max_iter: usize,
    /// Stop after the exemplar set is unchanged for this many iterations.
    pub convergence_iter: usize,
    /// If the input has more points than this, cluster a uniform subsample
    /// of exactly this size instead (0 = never subsample).
    pub max_points: usize,
}

impl Default for ApParams {
    fn default() -> Self {
        Self {
            damping: 0.7,
            max_iter: 300,
            convergence_iter: 20,
            max_points: 3000,
        }
    }
}

/// The result of running Affinity Propagation.
#[derive(Debug, Clone)]
pub struct AffinityPropagation {
    /// Indices (into the clustered subset) of the exemplars.
    pub exemplars: Vec<usize>,
    /// Cluster id per clustered point, densely relabeled `0..k`.
    pub assignments: Vec<usize>,
    /// Indices of the clustered points in the original input (identity when
    /// no subsampling happened).
    pub point_indices: Vec<usize>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the exemplar set converged before `max_iter`.
    pub converged: bool,
}

impl AffinityPropagation {
    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.exemplars.len()
    }

    /// Clusters `points` (one row per point) under `params`.
    ///
    /// # Errors
    /// Returns [`EvalError::InvalidInput`] for an empty input or an
    /// out-of-range damping factor.
    pub fn fit(
        points: &[&[f64]],
        params: &ApParams,
        rng: &mut impl Rng,
    ) -> Result<Self, EvalError> {
        if points.is_empty() {
            return Err(EvalError::InvalidInput {
                reason: "affinity propagation needs at least one point".into(),
            });
        }
        if !(0.5..1.0).contains(&params.damping) {
            return Err(EvalError::InvalidInput {
                reason: format!("damping must be in [0.5,1), got {}", params.damping),
            });
        }
        // Optional subsampling for tractability.
        let total = points.len();
        let point_indices: Vec<usize> = if params.max_points > 0 && total > params.max_points {
            let mut idx: Vec<usize> = (0..total).collect();
            for i in 0..params.max_points {
                let j = rng.gen_range(i..total);
                idx.swap(i, j);
            }
            idx.truncate(params.max_points);
            idx.sort_unstable();
            idx
        } else {
            (0..total).collect()
        };
        let n = point_indices.len();
        if n == 1 {
            return Ok(Self {
                exemplars: vec![0],
                assignments: vec![0],
                point_indices,
                iterations: 0,
                converged: true,
            });
        }

        // Similarities: negative squared Euclidean distance; preference
        // (diagonal) = median off-diagonal similarity.
        let mut s = vec![0.0f64; n * n];
        let mut off: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = -vector::dist_sq(points[point_indices[i]], points[point_indices[j]]);
                s[i * n + j] = d;
                s[j * n + i] = d;
                off.push(d);
            }
        }
        let preference = advsgm_linalg::stats::median(&off);
        for i in 0..n {
            s[i * n + i] = preference;
        }
        // Tiny symmetric noise breaks exemplar-count degeneracies (as in the
        // reference implementation).
        for v in s.iter_mut() {
            *v += 1e-12 * rng.gen::<f64>() * (v.abs() + 1.0);
        }

        let mut r = vec![0.0f64; n * n];
        let mut a = vec![0.0f64; n * n];
        let damp = params.damping;
        let mut last_exemplars: Vec<usize> = Vec::new();
        let mut stable = 0usize;
        let mut iterations = 0usize;
        let mut converged = false;

        for it in 0..params.max_iter {
            iterations = it + 1;
            // Responsibilities: r(i,k) <- s(i,k) - max_{k' != k} (a(i,k') + s(i,k')).
            for i in 0..n {
                let row_s = &s[i * n..(i + 1) * n];
                let row_a = &a[i * n..(i + 1) * n];
                // Track the top-2 of a+s to exclude k itself in O(n).
                let (mut max1, mut idx1, mut max2) = (f64::NEG_INFINITY, 0usize, f64::NEG_INFINITY);
                for k in 0..n {
                    let v = row_a[k] + row_s[k];
                    if v > max1 {
                        max2 = max1;
                        max1 = v;
                        idx1 = k;
                    } else if v > max2 {
                        max2 = v;
                    }
                }
                let row_r = &mut r[i * n..(i + 1) * n];
                for k in 0..n {
                    let best_other = if k == idx1 { max2 } else { max1 };
                    row_r[k] = damp * row_r[k] + (1.0 - damp) * (row_s[k] - best_other);
                }
            }
            // Availabilities:
            // a(i,k) <- min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k))),
            // a(k,k) <- sum_{i' != k} max(0, r(i',k)).
            for k in 0..n {
                let mut pos_sum = 0.0;
                for i in 0..n {
                    if i != k {
                        pos_sum += r[i * n + k].max(0.0);
                    }
                }
                let rkk = r[k * n + k];
                for i in 0..n {
                    let new = if i == k {
                        pos_sum
                    } else {
                        let without_i = pos_sum - r[i * n + k].max(0.0);
                        (rkk + without_i).min(0.0)
                    };
                    a[i * n + k] = damp * a[i * n + k] + (1.0 - damp) * new;
                }
            }
            // Current exemplars: k with r(k,k) + a(k,k) > 0.
            let exemplars: Vec<usize> = (0..n)
                .filter(|&k| r[k * n + k] + a[k * n + k] > 0.0)
                .collect();
            if !exemplars.is_empty() && exemplars == last_exemplars {
                stable += 1;
                if stable >= params.convergence_iter {
                    converged = true;
                    break;
                }
            } else {
                stable = 0;
                last_exemplars = exemplars;
            }
        }

        let mut exemplars = last_exemplars;
        if exemplars.is_empty() {
            // Fall back: the point with the best self-evidence.
            let best = (0..n)
                .max_by(|&x, &y| {
                    let vx = r[x * n + x] + a[x * n + x];
                    let vy = r[y * n + y] + a[y * n + y];
                    vx.partial_cmp(&vy).expect("finite messages")
                })
                .expect("n >= 1");
            exemplars = vec![best];
        }

        // Assign every point to its most similar exemplar (exemplars to
        // themselves), then relabel densely.
        let mut assignments = vec![0usize; n];
        for i in 0..n {
            let mut best = 0usize;
            let mut best_s = f64::NEG_INFINITY;
            for (c, &k) in exemplars.iter().enumerate() {
                if i == k {
                    best = c;
                    break;
                }
                if s[i * n + k] > best_s {
                    best_s = s[i * n + k];
                    best = c;
                }
            }
            assignments[i] = best;
        }

        Ok(Self {
            exemplars,
            assignments,
            point_indices,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Three well-separated Gaussian blobs in 2D.
    fn blobs(rng: &mut SmallRng, per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..per {
                pts.push(vec![
                    center[0] + advsgm_linalg::rng::gaussian(rng, 0.5),
                    center[1] + advsgm_linalg::rng::gaussian(rng, 0.5),
                ]);
                labels.push(c);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (pts, labels) = blobs(&mut rng, 30);
        let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let ap = AffinityPropagation::fit(&views, &ApParams::default(), &mut rng).unwrap();
        assert_eq!(ap.num_clusters(), 3, "expected 3 clusters");
        // Every ground-truth blob maps to exactly one AP cluster.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> = ap
                .assignments
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == blob)
                .map(|(&c, _)| c)
                .collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across clusters");
        }
    }

    #[test]
    fn single_point_trivial() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = vec![1.0, 2.0];
        let ap = AffinityPropagation::fit(&[p.as_slice()], &ApParams::default(), &mut rng).unwrap();
        assert_eq!(ap.num_clusters(), 1);
        assert_eq!(ap.assignments, vec![0]);
        assert!(ap.converged);
    }

    #[test]
    fn subsampling_caps_problem_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (pts, _) = blobs(&mut rng, 100); // 300 points
        let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let params = ApParams {
            max_points: 60,
            ..ApParams::default()
        };
        let ap = AffinityPropagation::fit(&views, &params, &mut rng).unwrap();
        assert_eq!(ap.point_indices.len(), 60);
        assert_eq!(ap.assignments.len(), 60);
        // Indices refer into the original input.
        assert!(ap.point_indices.iter().all(|&i| i < 300));
    }

    #[test]
    fn empty_input_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(AffinityPropagation::fit(&[], &ApParams::default(), &mut rng).is_err());
    }

    #[test]
    fn bad_damping_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let p = vec![0.0];
        let params = ApParams {
            damping: 0.2,
            ..ApParams::default()
        };
        assert!(AffinityPropagation::fit(&[p.as_slice()], &params, &mut rng).is_err());
    }

    #[test]
    fn identical_points_yield_valid_clustering() {
        // All-identical points make AP degenerate (every similarity equals
        // the preference, so any partition has equal net similarity); the
        // contract is only that the output is a *valid* clustering.
        let mut rng = SmallRng::seed_from_u64(6);
        let pts: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0, 1.0]).collect();
        let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let ap = AffinityPropagation::fit(&views, &ApParams::default(), &mut rng).unwrap();
        assert!(ap.num_clusters() >= 1 && ap.num_clusters() <= 20);
        assert_eq!(ap.assignments.len(), 20);
        assert!(ap.assignments.iter().all(|&c| c < ap.num_clusters()));
    }
}
