//! Error type for evaluation.

use std::fmt;

/// Errors produced by the evaluators.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A parameter or input was outside its legal domain.
    InvalidInput {
        /// What was wrong.
        reason: String,
    },
    /// An iterative algorithm failed to make progress.
    DidNotConverge {
        /// Algorithm name.
        algorithm: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            EvalError::DidNotConverge {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EvalError::DidNotConverge {
            algorithm: "affinity propagation",
            iterations: 200,
        };
        assert!(e.to_string().contains("affinity propagation"));
    }
}
