//! # advsgm-eval
//!
//! Downstream evaluation for graph embeddings, mirroring Section VI-A of the
//! AdvSGM paper:
//!
//! * **Link prediction** — 90/10 edge split, equal negative pairs, scores
//!   from embedding inner products, measured by AUC ([`auc`], [`linkpred`]);
//! * **Node clustering** — embeddings fed to Affinity Propagation (Frey &
//!   Dueck 2007, the paper's clusterer) and scored by mutual information
//!   against the class labels ([`clustering`]);
//! * **Sign prediction** — held-out friend vs foe edges on signed graphs,
//!   scored by AUC ([`signpred`]; the arXiv 2512.00307 workload, beyond
//!   the paper).
//!
//! The [`downstream::EmbeddingSource`] trait decouples the evaluators from
//! whichever model (AdvSGM, a skip-gram ablation, or an external baseline)
//! produced the embeddings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auc;
pub mod clustering;
pub mod downstream;
pub mod error;
pub mod linkpred;
pub mod signpred;

pub use auc::auc_from_scores;
pub use downstream::EmbeddingSource;
pub use error::EvalError;
pub use signpred::{evaluate_sign_split, sign_prediction_auc};
