//! Link-prediction evaluation pipeline (Section VI-A).

use advsgm_graph::partition::LinkPredictionSplit;
use advsgm_graph::Edge;

use crate::auc::auc_from_scores;
use crate::downstream::EmbeddingSource;
use crate::error::EvalError;

/// Scores a set of node pairs with an embedding source.
pub fn score_pairs(source: &impl EmbeddingSource, pairs: &[Edge]) -> Vec<f64> {
    pairs.iter().map(|e| source.score(e.u(), e.v())).collect()
}

/// AUC of `source` on held-out positive/negative pairs.
///
/// # Errors
/// Propagates [`auc_from_scores`] validation errors.
pub fn link_prediction_auc(
    source: &impl EmbeddingSource,
    test_pos: &[Edge],
    test_neg: &[Edge],
) -> Result<f64, EvalError> {
    let pos = score_pairs(source, test_pos);
    let neg = score_pairs(source, test_neg);
    auc_from_scores(&pos, &neg)
}

/// Convenience wrapper over a full [`LinkPredictionSplit`].
///
/// # Errors
/// Propagates [`auc_from_scores`] validation errors.
pub fn evaluate_split(
    source: &impl EmbeddingSource,
    split: &LinkPredictionSplit,
) -> Result<f64, EvalError> {
    link_prediction_auc(source, &split.test_pos, &split.test_neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;
    use advsgm_graph::partition::link_prediction_split;
    use advsgm_graph::NodeId;
    use advsgm_linalg::DenseMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Oracle embeddings: one-hot-ish vectors whose inner product is high
    /// exactly for adjacent karate-club nodes (row = adjacency indicator).
    fn adjacency_embeddings() -> DenseMatrix {
        let g = karate_club();
        let n = g.num_nodes();
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
            for &j in g.neighbors(NodeId::from_index(i)) {
                m.set(i, j as usize, 0.7);
            }
        }
        m
    }

    #[test]
    fn oracle_embeddings_beat_chance() {
        let g = karate_club();
        let mut rng = SmallRng::seed_from_u64(1);
        let split = link_prediction_split(&g, 0.2, &mut rng).unwrap();
        let auc = evaluate_split(&adjacency_embeddings(), &split).unwrap();
        assert!(auc > 0.7, "oracle AUC {auc} too low");
    }

    #[test]
    fn random_embeddings_near_chance() {
        let g = karate_club();
        let mut rng = SmallRng::seed_from_u64(2);
        let split = link_prediction_split(&g, 0.2, &mut rng).unwrap();
        // Random embeddings: average AUC over several draws ~ 0.5.
        let mut total = 0.0;
        let runs = 20;
        for s in 0..runs {
            let mut r = SmallRng::seed_from_u64(100 + s);
            let m = advsgm_linalg::rng::gaussian_matrix(&mut r, 1.0, g.num_nodes(), 16);
            total += evaluate_split(&m, &split).unwrap();
        }
        let mean = total / runs as f64;
        assert!((mean - 0.5).abs() < 0.12, "mean AUC {mean}");
    }

    #[test]
    fn score_pairs_length() {
        let m = DenseMatrix::zeros(5, 3);
        let pairs = vec![Edge::from_raw(0, 1), Edge::from_raw(2, 3)];
        assert_eq!(score_pairs(&m, &pairs).len(), 2);
    }
}
