//! The attacks: decision rules over released Eq.-2 inner products.
//!
//! Both attacks see exactly what a downstream consumer sees — the score
//! `<w_u, w_v>` computed from released `.aemb` bytes — for a set of
//! *member* trials (the artifact was trained with the target edge) and
//! *non-member* trials (it was not). Each attack picks the decision rule
//! that maximises the certified [`empirical_epsilon`] over its own trial
//! data, so the reported bound is the strongest operating point the
//! attack family achieves; the Clopper–Pearson bounds keep the claim
//! statistically one-sided at the configured confidence.

use serde::{Deserialize, Serialize};

use crate::error::AttackError;
use crate::stats::{clopper_pearson, empirical_epsilon};

/// One attack's result: the chosen decision rule, its confusion counts,
/// and the certified empirical `epsilon` lower bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Attack family (`score_threshold` or `likelihood_ratio`).
    pub name: String,
    /// The decision threshold (raw score for the threshold attack,
    /// log-likelihood ratio for the LR attack); `score >= threshold`
    /// predicts *member*.
    pub threshold: f64,
    /// Member trials classified as members.
    pub true_positives: u64,
    /// Non-member trials classified as members.
    pub false_positives: u64,
    /// Non-member trials classified as non-members.
    pub true_negatives: u64,
    /// Member trials classified as non-members.
    pub false_negatives: u64,
    /// Point-estimate true-positive rate.
    pub tpr: f64,
    /// Point-estimate false-positive rate.
    pub fpr: f64,
    /// Clopper–Pearson lower bound on the TPR.
    pub tpr_lo: f64,
    /// Clopper–Pearson upper bound on the FPR.
    pub fpr_hi: f64,
    /// The certified empirical `epsilon` lower bound at the configured
    /// confidence (0 when the attack separates nothing).
    pub empirical_epsilon: f64,
}

/// Validates attack inputs shared by both families.
fn check_inputs(members: &[f64], non_members: &[f64]) -> Result<(), AttackError> {
    if members.is_empty() || non_members.is_empty() {
        return Err(AttackError::invalid(
            "trials",
            "need at least one member and one non-member trial",
        ));
    }
    if members.iter().chain(non_members).any(|s| !s.is_finite()) {
        return Err(AttackError::invalid(
            "scores",
            "released scores must be finite",
        ));
    }
    Ok(())
}

/// Candidate decision thresholds for a pooled score set: midpoints
/// between consecutive distinct values, plus one sentinel on each side
/// (classify-everything and classify-nothing).
fn candidate_thresholds(members: &[f64], non_members: &[f64]) -> Vec<f64> {
    let mut all: Vec<f64> = members.iter().chain(non_members).copied().collect();
    all.sort_by(f64::total_cmp);
    all.dedup();
    let mut out = Vec::with_capacity(all.len() + 1);
    out.push(all[0] - 1.0);
    for w in all.windows(2) {
        out.push(0.5 * (w[0] + w[1]));
    }
    out.push(all[all.len() - 1] + 1.0);
    out
}

/// Evaluates every candidate threshold and keeps the one certifying the
/// largest empirical `epsilon` (first maximiser wins, so the result is
/// deterministic under score permutations).
fn best_operating_point(
    name: &str,
    members: &[f64],
    non_members: &[f64],
    confidence: f64,
    delta: f64,
) -> Result<AttackSummary, AttackError> {
    check_inputs(members, non_members)?;
    let (n_pos, n_neg) = (members.len() as u64, non_members.len() as u64);
    let mut best: Option<AttackSummary> = None;
    for t in candidate_thresholds(members, non_members) {
        let tp = members.iter().filter(|&&s| s >= t).count() as u64;
        let fp = non_members.iter().filter(|&&s| s >= t).count() as u64;
        let (tpr_lo, _) = clopper_pearson(tp, n_pos, confidence)?;
        let (_, fpr_hi) = clopper_pearson(fp, n_neg, confidence)?;
        let eps = empirical_epsilon(tpr_lo, fpr_hi, delta);
        if best.as_ref().is_none_or(|b| eps > b.empirical_epsilon) {
            best = Some(AttackSummary {
                name: name.to_string(),
                threshold: t,
                true_positives: tp,
                false_positives: fp,
                true_negatives: n_neg - fp,
                false_negatives: n_pos - tp,
                tpr: tp as f64 / n_pos as f64,
                fpr: fp as f64 / n_neg as f64,
                tpr_lo,
                fpr_hi,
                empirical_epsilon: eps,
            });
        }
    }
    Ok(best.expect("at least one candidate threshold"))
}

/// The score-threshold attack: predict *member* when the released
/// Eq.-2 inner product clears a threshold, chosen to maximise the
/// certified empirical `epsilon`.
///
/// # Errors
/// [`AttackError::InvalidParameter`] on empty or non-finite inputs, or
/// an out-of-range confidence level.
pub fn score_threshold_attack(
    members: &[f64],
    non_members: &[f64],
    confidence: f64,
    delta: f64,
) -> Result<AttackSummary, AttackError> {
    best_operating_point("score_threshold", members, non_members, confidence, delta)
}

/// Mean and (floored) standard deviation of a score sample.
fn gaussian_fit(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    // Floor the deviation so a degenerate (constant) sample yields a
    // finite, extremely spiky likelihood instead of a division by zero.
    (mean, var.sqrt().max(1e-12))
}

/// Log-density of `N(mean, sd^2)` at `x`, up to the shared `ln(2*pi)/2`
/// constant (which cancels in the ratio).
fn ln_normal(x: f64, mean: f64, sd: f64) -> f64 {
    let z = (x - mean) / sd;
    -0.5 * z * z - sd.ln()
}

/// The Gaussian likelihood-ratio attack: fit one Gaussian to the member
/// scores and one to the non-member scores, map every trial to its
/// log-likelihood ratio, and threshold *that* — by Neyman–Pearson the
/// strongest test of the two-Gaussian hypothesis, and sensitive to
/// variance differences a raw score threshold cannot see.
///
/// The Gaussians are fit on the same trials they classify
/// (resubstitution); the Clopper–Pearson machinery still certifies the
/// resulting operating point, and DESIGN.md §13 spells out the caveat.
///
/// # Errors
/// [`AttackError::InvalidParameter`] on empty or non-finite inputs, or
/// an out-of-range confidence level.
pub fn likelihood_ratio_attack(
    members: &[f64],
    non_members: &[f64],
    confidence: f64,
    delta: f64,
) -> Result<AttackSummary, AttackError> {
    check_inputs(members, non_members)?;
    let (mu1, sd1) = gaussian_fit(members);
    let (mu0, sd0) = gaussian_fit(non_members);
    let llr = |s: f64| ln_normal(s, mu1, sd1) - ln_normal(s, mu0, sd0);
    let members_llr: Vec<f64> = members.iter().map(|&s| llr(s)).collect();
    let non_members_llr: Vec<f64> = non_members.iter().map(|&s| llr(s)).collect();
    best_operating_point(
        "likelihood_ratio",
        &members_llr,
        &non_members_llr,
        confidence,
        delta,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_samples_certify_a_positive_epsilon() {
        let members: Vec<f64> = (0..20).map(|i| 1.0 + 0.01 * i as f64).collect();
        let non_members: Vec<f64> = (0..20).map(|i| -1.0 + 0.01 * i as f64).collect();
        for attack in [score_threshold_attack, likelihood_ratio_attack] {
            let s = attack(&members, &non_members, 0.95, 1e-5).unwrap();
            assert_eq!(s.true_positives, 20, "{}", s.name);
            assert_eq!(s.false_positives, 0, "{}", s.name);
            assert!(
                s.empirical_epsilon > 1.0,
                "{}: {}",
                s.name,
                s.empirical_epsilon
            );
        }
    }

    #[test]
    fn identical_samples_certify_nothing() {
        let xs: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin()).collect();
        for attack in [score_threshold_attack, likelihood_ratio_attack] {
            let s = attack(&xs, &xs, 0.95, 1e-5).unwrap();
            assert_eq!(s.empirical_epsilon, 0.0, "{}", s.name);
        }
    }

    #[test]
    fn likelihood_ratio_sees_variance_differences() {
        // Same mean, very different spread: a raw threshold can exploit
        // one tail, but the LR attack's two-sided rule must do at least
        // as well as the raw rule does on the LLR axis.
        let members: Vec<f64> = (0..40).map(|i| 10.0 * ((i as f64) - 19.5) / 19.5).collect();
        let non_members: Vec<f64> = (0..40).map(|i| 0.1 * ((i as f64) - 19.5) / 19.5).collect();
        let lr = likelihood_ratio_attack(&members, &non_members, 0.95, 0.0).unwrap();
        assert!(lr.empirical_epsilon > 0.5, "{}", lr.empirical_epsilon);
        // Every member sits in a tail, every non-member in the core.
        assert_eq!(lr.true_positives + lr.false_negatives, 40);
        assert!(lr.tpr > 0.9, "tpr={}", lr.tpr);
    }

    #[test]
    fn confusion_counts_are_consistent() {
        let members = vec![0.9, 0.8, 0.2, 0.7];
        let non_members = vec![0.1, 0.3, 0.6];
        let s = score_threshold_attack(&members, &non_members, 0.9, 0.0).unwrap();
        assert_eq!(s.true_positives + s.false_negatives, 4);
        assert_eq!(s.false_positives + s.true_negatives, 3);
        assert!((s.tpr - s.true_positives as f64 / 4.0).abs() < 1e-12);
        assert!((s.fpr - s.false_positives as f64 / 3.0).abs() < 1e-12);
        assert!(s.tpr_lo <= s.tpr && s.fpr <= s.fpr_hi);
    }

    #[test]
    fn degenerate_and_bad_inputs_are_typed_errors() {
        assert!(score_threshold_attack(&[], &[1.0], 0.95, 0.0).is_err());
        assert!(score_threshold_attack(&[1.0], &[], 0.95, 0.0).is_err());
        assert!(score_threshold_attack(&[f64::NAN], &[1.0], 0.95, 0.0).is_err());
        assert!(score_threshold_attack(&[1.0], &[f64::INFINITY], 0.95, 0.0).is_err());
        assert!(score_threshold_attack(&[1.0], &[0.0], 1.5, 0.0).is_err());
        // Constant samples are degenerate but legal (variance floor).
        let s = likelihood_ratio_attack(&[1.0; 5], &[0.0; 5], 0.95, 0.0).unwrap();
        assert!(s.empirical_epsilon.is_finite());
    }
}
