//! Empirical privacy auditing for AdvSGM releases: membership-inference
//! attacks on `.aemb` bytes, with certified empirical-`epsilon` reporting.
//!
//! The accountant in `advsgm-privacy` proves an *upper* bound on what a
//! release can leak; this crate attacks the release to establish a
//! statistical *lower* bound, so the stamped `epsilon` becomes a
//! falsifiable claim instead of an article of faith (ROADMAP item 4:
//! "trust, but verify the epsilon"). The pieces:
//!
//! * [`harness`] — the paired-worlds protocol: pick a panel of target
//!   edges via the existing link-prediction split, train many releases
//!   with and without each edge (independent derived seeds, deterministic
//!   fan-out), and read scores back through the released bytes only.
//! * [`attack`] — the decision rules: a score-threshold attack and a
//!   Gaussian likelihood-ratio attack over the released Eq.-2 inner
//!   products.
//! * [`stats`] — exact binomial machinery: Clopper–Pearson intervals and
//!   the `(epsilon, delta)`-DP hypothesis-testing bound that converts a
//!   confident (TPR, FPR) operating point into `epsilon >= ...`.
//! * [`report`] — the `results/AUDIT_membership.json` artifact: schema,
//!   verdict, and a byte-deterministic pretty renderer.
//!
//! The crate deliberately depends only on the graph substrate, the store
//! (the release boundary), and the thread pool — never on the training
//! stack. A release reaches the harness as opaque bytes through a caller
//! -supplied release function, which is exactly the adversary's view
//! under the paper's Theorem 5: everything after release is
//! post-processing, so the audit consumes no additional privacy budget
//! and can never peek past the trust boundary. The `advsgm::api` facade
//! supplies the release function that wires this to real training.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attack;
pub mod error;
pub mod harness;
pub mod report;
pub mod stats;

pub use attack::{likelihood_ratio_attack, score_threshold_attack, AttackSummary};
pub use error::AttackError;
pub use harness::{run_audit, AuditConfig, AuditOutcome, EdgeAudit};
pub use report::{AuditReport, AuditSection, GraphInfo, PanelInfo, ReleaseProfile};
pub use stats::{clopper_pearson, empirical_epsilon};
