//! The paired-worlds audit harness: panel selection, seed derivation,
//! fan-out, and attack evaluation.
//!
//! For each target edge `e` the harness trains `runs_per_world`
//! independent releases on `G0 + e` (member world) and the same number
//! on `G0` (non-member world), where `G0` is the training side of a
//! [`link_prediction_split`] and `e` is one of the split's sampled
//! *non-edges* — a canary. Member worlds never differ from `G0` by more
//! than the one audited edge, and because edge-level DP must hold for
//! *every* pair of adjacent graphs, auditing the most-exposed edges is
//! exactly what yields the tightest honest lower bound. Held-out
//! positive edges would be the wrong panel: they are structurally
//! predictable (common neighbors, community blocks) and score high even
//! in the world that never trained on them, washing out the membership
//! signal the audit is trying to measure. A sampled non-edge carries no
//! such structural alibi — any score lift it shows can only come from
//! the release having memorized it.
//!
//! Every run gets its own seed, derived from the base seed
//! by a splitmix64 chain over `(edge, world, rep)`; the fan-out runs on
//! [`advsgm_parallel::ThreadPool::map_chunks`], whose results come back
//! in submission order, so the audit is byte-deterministic regardless of
//! thread count.
//!
//! The harness is generic over the *release function* — anything that
//! turns a graph and a seed into released `.aemb` bytes. It never sees
//! model internals: attacks read scores back through
//! [`EmbeddingStore::from_bytes`], exactly the Theorem-5 trust boundary
//! a real adversary sits behind.

use advsgm_graph::partition::link_prediction_split;
use advsgm_graph::{Edge, Graph};
use advsgm_parallel::{resolve_threads, ThreadPool};
use advsgm_store::EmbeddingStore;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::attack::{likelihood_ratio_attack, score_threshold_attack, AttackSummary};
use crate::error::AttackError;

/// Audit geometry and statistical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// Canary edges to audit (the panel size).
    pub targets: usize,
    /// Independent training runs per world per edge; each side of the
    /// attack sees `targets * runs_per_world` trials.
    pub runs_per_world: usize,
    /// Held-out fraction for the [`link_prediction_split`] that supplies
    /// the panel (the paper's protocol uses 0.1).
    pub test_fraction: f64,
    /// Base seed; every run seed derives from it deterministically.
    pub seed: u64,
    /// Confidence level of the Clopper–Pearson bounds.
    pub confidence: f64,
    /// The `delta` at which the empirical `epsilon` bound is stated
    /// (match the training `delta`).
    pub delta: f64,
    /// Fan-out width for paired training runs; `0` = auto
    /// (`ADVSGM_THREADS`, else 1).
    pub threads: usize,
}

impl AuditConfig {
    /// A config with the documented defaults: 3 target edges, 5 runs per
    /// world, the paper's 0.1 split, 95% confidence, `delta = 1e-5`.
    pub fn new(seed: u64) -> Self {
        Self {
            targets: 3,
            runs_per_world: 5,
            test_fraction: 0.1,
            seed,
            confidence: 0.95,
            delta: 1e-5,
            threads: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`AttackError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), AttackError> {
        if self.targets == 0 {
            return Err(AttackError::invalid(
                "targets",
                "need at least one target edge",
            ));
        }
        if self.runs_per_world < 2 {
            return Err(AttackError::invalid(
                "runs_per_world",
                format!(
                    "need at least 2 runs per world, got {}",
                    self.runs_per_world
                ),
            ));
        }
        if !(self.test_fraction > 0.0 && self.test_fraction < 1.0) {
            return Err(AttackError::invalid(
                "test_fraction",
                format!("must be in (0,1), got {}", self.test_fraction),
            ));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(AttackError::invalid(
                "confidence",
                format!("must be in (0,1), got {}", self.confidence),
            ));
        }
        if !(self.delta >= 0.0 && self.delta < 1.0) {
            return Err(AttackError::invalid(
                "delta",
                format!("must be in [0,1), got {}", self.delta),
            ));
        }
        Ok(())
    }
}

/// Per-target-edge score summary (a report detail row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeAudit {
    /// First endpoint of the audited edge.
    pub u: u64,
    /// Second endpoint of the audited edge.
    pub v: u64,
    /// Mean released score across the member-world runs.
    pub mean_score_with: f64,
    /// Mean released score across the non-member-world runs.
    pub mean_score_without: f64,
}

/// Everything one audited condition produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// Both attack families, threshold attack first.
    pub attacks: Vec<AttackSummary>,
    /// Per-edge detail rows, in panel order.
    pub edges: Vec<EdgeAudit>,
    /// The strongest certified bound across the attacks.
    pub empirical_epsilon: f64,
    /// Largest accountant stamp read back from the released bytes
    /// (`None` when no run carried one).
    pub stamped_epsilon: Option<f64>,
    /// Trials on each side of the attack.
    pub trials_per_world: u64,
    /// Nodes in the audited graph.
    pub graph_nodes: usize,
    /// Edges in the audited graph (before the split).
    pub graph_edges: usize,
    /// Edges in the shared without-world graph `G0`.
    pub train_edges: usize,
}

/// splitmix64 finalizer: the seed-derivation primitive.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of one training run, derived so that every `(edge, world,
/// rep)` cell gets an independent stream from the base seed.
fn derive_seed(base: u64, edge: usize, member: bool, rep: usize) -> u64 {
    let world = u64::from(member);
    mix(mix(mix(base).wrapping_add(edge as u64)).wrapping_add(world)).wrapping_add(mix(rep as u64))
}

/// One training run the fan-out must execute.
struct RunSpec {
    /// Index into the per-edge world graphs (`None` = the shared `G0`).
    world: Option<usize>,
    edge_idx: usize,
    member: bool,
    seed: u64,
}

/// Runs the full paired-worlds audit: selects the panel, trains
/// `2 * targets * runs_per_world` releases through `release`, attacks
/// the released bytes, and certifies the empirical `epsilon` bound.
///
/// `release` maps `(graph, seed)` to released `.aemb` bytes
/// ([`EmbeddingStore::to_bytes`] form); it must be deterministic in its
/// arguments for the audit itself to be deterministic.
///
/// # Errors
/// [`AttackError::Graph`] when the panel split fails,
/// [`AttackError::InvalidParameter`] on config violations or a panel
/// larger than the held-out edge set, [`AttackError::Release`] /
/// [`AttackError::Store`] when a release cannot be produced or read.
pub fn run_audit<F>(
    graph: &Graph,
    cfg: &AuditConfig,
    release: F,
) -> Result<AuditOutcome, AttackError>
where
    F: Fn(&Graph, u64) -> Result<Vec<u8>, AttackError> + Sync,
{
    cfg.validate()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let split = link_prediction_split(graph, cfg.test_fraction, &mut rng)?;
    if split.test_neg.len() < cfg.targets {
        return Err(AttackError::invalid(
            "targets",
            format!(
                "panel of {} exceeds the {} held-out canaries (raise test_fraction or shrink the panel)",
                cfg.targets,
                split.test_neg.len()
            ),
        ));
    }
    // The canary panel: the split's sampled non-edges (see module docs).
    let panel: Vec<Edge> = split.test_neg[..cfg.targets].to_vec();
    let g0 = &split.train;

    // Member worlds: G0 plus exactly the audited edge.
    let with_worlds: Vec<Graph> = panel
        .iter()
        .map(|e| {
            let mut edges = g0.edges().to_vec();
            edges.push(*e);
            g0.with_edges(edges)
        })
        .collect();

    let mut specs = Vec::with_capacity(2 * cfg.targets * cfg.runs_per_world);
    for (j, _) in panel.iter().enumerate() {
        for rep in 0..cfg.runs_per_world {
            specs.push(RunSpec {
                world: Some(j),
                edge_idx: j,
                member: true,
                seed: derive_seed(cfg.seed, j, true, rep),
            });
            specs.push(RunSpec {
                world: None,
                edge_idx: j,
                member: false,
                seed: derive_seed(cfg.seed, j, false, rep),
            });
        }
    }

    // Train and attack each release. map_chunks returns results in
    // submission order, so collation below is thread-count-invariant.
    let mut pool = ThreadPool::new(resolve_threads(cfg.threads));
    let results: Vec<Result<(f64, Option<f64>), AttackError>> =
        pool.map_chunks(&specs, 1, |_, _, chunk| {
            let spec = &chunk[0];
            let world = match spec.world {
                Some(j) => &with_worlds[j],
                None => g0,
            };
            let bytes = release(world, spec.seed)?;
            let store = EmbeddingStore::from_bytes(&bytes)?;
            let e = panel[spec.edge_idx];
            let score = store.score(e.u().index(), e.v().index())?;
            Ok((score, store.meta().epsilon))
        });

    let mut member_scores = vec![Vec::with_capacity(cfg.runs_per_world); cfg.targets];
    let mut non_member_scores = vec![Vec::with_capacity(cfg.runs_per_world); cfg.targets];
    let mut stamped: Option<f64> = None;
    for (spec, result) in specs.iter().zip(results) {
        let (score, stamp) = result?;
        if let Some(s) = stamp {
            stamped = Some(stamped.map_or(s, |prev: f64| prev.max(s)));
        }
        if spec.member {
            member_scores[spec.edge_idx].push(score);
        } else {
            non_member_scores[spec.edge_idx].push(score);
        }
    }

    let edges: Vec<EdgeAudit> = panel
        .iter()
        .enumerate()
        .map(|(j, e)| EdgeAudit {
            u: e.u().index() as u64,
            v: e.v().index() as u64,
            mean_score_with: mean(&member_scores[j]),
            mean_score_without: mean(&non_member_scores[j]),
        })
        .collect();

    // Pool the trials after label-free per-edge centering: each edge has
    // its own baseline score level (degree, community), so the attacker
    // subtracts the mean over *all* of that edge's runs — both worlds
    // pooled, no labels consulted — before applying one decision rule to
    // the whole panel. (DESIGN.md §13 discusses the independence caveat
    // of the shared centering constant.)
    let mut members = Vec::with_capacity(cfg.targets * cfg.runs_per_world);
    let mut non_members = Vec::with_capacity(cfg.targets * cfg.runs_per_world);
    for (with, without) in member_scores.iter().zip(&non_member_scores) {
        let pooled: f64 = with.iter().chain(without).sum();
        let center = pooled / (with.len() + without.len()) as f64;
        members.extend(with.iter().map(|s| s - center));
        non_members.extend(without.iter().map(|s| s - center));
    }
    let attacks = vec![
        score_threshold_attack(&members, &non_members, cfg.confidence, cfg.delta)?,
        likelihood_ratio_attack(&members, &non_members, cfg.confidence, cfg.delta)?,
    ];
    let empirical_epsilon = attacks
        .iter()
        .map(|a| a.empirical_epsilon)
        .fold(0.0, f64::max);

    Ok(AuditOutcome {
        attacks,
        edges,
        empirical_epsilon,
        stamped_epsilon: stamped,
        trials_per_world: members.len() as u64,
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        train_edges: g0.num_edges(),
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::erdos_renyi::gnm_random_graph;

    fn fixture_graph() -> Graph {
        let mut rng = SmallRng::seed_from_u64(11);
        gnm_random_graph(60, 240, &mut rng)
    }

    /// A fake "training" release with a tunable leak. Rows live in
    /// `R^n`: node `u` gets `e_u` plus `leak * 0.1` times the indicator
    /// sum of its neighbors plus per-seed jitter, so a pair score is
    /// `~0.2 * leak` when the edge is present and `~0` when it is not —
    /// deterministic in `(graph, seed)` like a real release function.
    fn fake_release(graph: &Graph, seed: u64, leak: f64) -> Result<Vec<u8>, AttackError> {
        use advsgm_store::PrivacyMeta;
        use rand::Rng;
        let n = graph.num_nodes();
        let s = 0.1 * leak;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = vec![vec![0.0f64; n]; n];
        for (u, row) in rows.iter_mut().enumerate() {
            row[u] = 1.0;
            for x in row.iter_mut() {
                *x += rng.gen_range(-0.01..0.01);
            }
        }
        for e in graph.edges() {
            let (u, v) = (e.u().index(), e.v().index());
            rows[u][v] += s;
            rows[v][u] += s;
        }
        let flat: Vec<f64> = rows.into_iter().flatten().collect();
        let matrix = advsgm_linalg::DenseMatrix::from_vec(n, n, flat)
            .map_err(|e| AttackError::release(e.to_string()))?;
        let store = EmbeddingStore::new(
            matrix,
            PrivacyMeta::private(advsgm_core::ModelVariant::AdvSgm, 6.0, 1e-5, 5.0),
        )?;
        Ok(store.to_bytes())
    }

    /// A perfectly leaky mechanism the attack must flag.
    fn leaky_release(graph: &Graph, seed: u64) -> Result<Vec<u8>, AttackError> {
        fake_release(graph, seed, 1.0)
    }

    /// Embeddings that ignore the graph entirely (a perfectly private
    /// mechanism; the attack must certify ~0).
    fn oblivious_release(graph: &Graph, seed: u64) -> Result<Vec<u8>, AttackError> {
        fake_release(graph, seed, 0.0)
    }

    #[test]
    fn leaky_mechanism_is_flagged_with_high_epsilon() {
        let g = fixture_graph();
        let mut cfg = AuditConfig::new(7);
        cfg.targets = 2;
        cfg.runs_per_world = 8;
        let out = run_audit(&g, &cfg, leaky_release).unwrap();
        assert_eq!(out.trials_per_world, 16);
        assert!(
            out.empirical_epsilon > 1.0,
            "leak not detected: {}",
            out.empirical_epsilon
        );
        // Member-world mean scores dominate per edge.
        for e in &out.edges {
            assert!(e.mean_score_with > e.mean_score_without, "{e:?}");
        }
        assert_eq!(out.stamped_epsilon, Some(6.0));
    }

    #[test]
    fn oblivious_mechanism_certifies_nothing() {
        let g = fixture_graph();
        let mut cfg = AuditConfig::new(7);
        cfg.targets = 2;
        cfg.runs_per_world = 6;
        let out = run_audit(&g, &cfg, oblivious_release).unwrap();
        assert_eq!(
            out.empirical_epsilon, 0.0,
            "phantom leak: {:?}",
            out.attacks
        );
    }

    #[test]
    fn audit_is_deterministic_across_thread_counts() {
        let g = fixture_graph();
        let mut cfg = AuditConfig::new(3);
        cfg.targets = 2;
        cfg.runs_per_world = 3;
        cfg.threads = 1;
        let a = run_audit(&g, &cfg, leaky_release).unwrap();
        cfg.threads = 4;
        let b = run_audit(&g, &cfg, leaky_release).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_do_not_collide_across_cells() {
        let mut seen = std::collections::HashSet::new();
        for edge in 0..16 {
            for member in [false, true] {
                for rep in 0..16 {
                    assert!(
                        seen.insert(derive_seed(99, edge, member, rep)),
                        "seed collision at ({edge}, {member}, {rep})"
                    );
                }
            }
        }
    }

    #[test]
    fn config_violations_are_typed() {
        let g = fixture_graph();
        let mut cfg = AuditConfig::new(1);
        cfg.targets = 0;
        assert!(run_audit(&g, &cfg, leaky_release).is_err());
        let mut cfg = AuditConfig::new(1);
        cfg.runs_per_world = 1;
        assert!(run_audit(&g, &cfg, leaky_release).is_err());
        let mut cfg = AuditConfig::new(1);
        cfg.confidence = 1.0;
        assert!(run_audit(&g, &cfg, leaky_release).is_err());
        // Panel larger than the held-out set.
        let mut cfg = AuditConfig::new(1);
        cfg.targets = 1000;
        cfg.runs_per_world = 2;
        let err = run_audit(&g, &cfg, leaky_release).unwrap_err();
        assert!(err.to_string().contains("held-out"), "{err}");
    }

    #[test]
    fn release_failures_propagate() {
        let g = fixture_graph();
        let cfg = AuditConfig::new(1);
        let err = run_audit(&g, &cfg, |_, _| {
            Err(AttackError::release("engine exploded"))
        })
        .unwrap_err();
        assert!(matches!(err, AttackError::Release(_)), "{err}");
    }
}
