//! The attack crate's typed error.

use std::fmt;

use advsgm_graph::GraphError;
use advsgm_store::StoreError;

/// Every failure the audit harness can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// An audit parameter rejected at validation.
    InvalidParameter {
        /// The parameter that was rejected.
        param: &'static str,
        /// The constraint it violated.
        reason: String,
    },
    /// A graph-substrate failure (panel selection, world construction).
    Graph(GraphError),
    /// A released-artifact failure (the attacker could not even parse or
    /// query the `.aemb` bytes it was handed).
    Store(StoreError),
    /// The release function failed to produce an artifact — a training
    /// failure on the auditor's side of the trust boundary, rendered to a
    /// message so the attack crate stays independent of the training
    /// stack.
    Release(String),
    /// An I/O failure writing the audit report.
    Io(std::io::Error),
}

impl AttackError {
    /// An audit-parameter rejection.
    pub fn invalid(param: &'static str, reason: impl Into<String>) -> Self {
        AttackError::InvalidParameter {
            param,
            reason: reason.into(),
        }
    }

    /// A release-side failure, rendered to a message.
    pub fn release(reason: impl Into<String>) -> Self {
        AttackError::Release(reason.into())
    }
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InvalidParameter { param, reason } => {
                write!(f, "invalid audit parameter {param}: {reason}")
            }
            AttackError::Graph(e) => write!(f, "audit graph setup failed: {e}"),
            AttackError::Store(e) => write!(f, "released artifact unreadable: {e}"),
            AttackError::Release(reason) => write!(f, "release failed: {reason}"),
            AttackError::Io(e) => write!(f, "report write failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Graph(e) => Some(e),
            AttackError::Store(e) => Some(e),
            AttackError::Io(e) => Some(e),
            AttackError::InvalidParameter { .. } | AttackError::Release(_) => None,
        }
    }
}

impl From<GraphError> for AttackError {
    fn from(e: GraphError) -> Self {
        AttackError::Graph(e)
    }
}

impl From<StoreError> for AttackError {
    fn from(e: StoreError) -> Self {
        AttackError::Store(e)
    }
}

impl From<std::io::Error> for AttackError {
    fn from(e: std::io::Error) -> Self {
        AttackError::Io(e)
    }
}
