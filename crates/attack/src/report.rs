//! The `results/AUDIT_membership.json` artifact: schema, assembly, and a
//! deterministic pretty renderer.
//!
//! The report places the attack's certified empirical `epsilon` lower
//! bound *next to* the accountant's stamped spend read back from the
//! released bytes, and states the comparison as a verdict. Field order
//! is fixed by the struct definitions (the vendored serde preserves it),
//! floats render shortest-roundtrip, and nothing in the schema depends
//! on wall-clock time — so a rerun at the same seed reproduces the file
//! byte-for-byte. The schema is documented in `docs/BENCHMARKS.md`.

use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::attack::AttackSummary;
use crate::error::AttackError;
use crate::harness::{AuditConfig, AuditOutcome, EdgeAudit};

/// Current value of [`AuditReport::schema_version`].
pub const AUDIT_SCHEMA_VERSION: u64 = 1;

/// The training configuration behind the audited releases, echoed into
/// the report by the caller (the harness itself only ever sees released
/// bytes, so it cannot reconstruct this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseProfile {
    /// Paper name of the trained variant (e.g. `AdvSGM`).
    pub variant: String,
    /// Embedding dimension `r`.
    pub dim: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Pairs per discriminator batch `B`.
    pub batch_size: usize,
    /// Learning rate (`eta_d = eta_g`).
    pub learning_rate: f64,
    /// Noise multiplier `sigma` (the configured value; the σ→0 ablation
    /// echoes the non-private variant instead of a literal zero).
    pub sigma: f64,
    /// Configured privacy budget ceiling `epsilon`.
    pub epsilon_target: f64,
    /// Configured failure probability `delta`.
    pub delta: f64,
}

/// The graph the audit ran on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphInfo {
    /// Nodes in the audited graph.
    pub nodes: usize,
    /// Edges in the audited graph (before the split).
    pub edges: usize,
    /// Edges in the shared without-world training graph `G0`.
    pub train_edges: usize,
}

/// Panel geometry: how many paired worlds were trained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelInfo {
    /// Target edges audited.
    pub targets: usize,
    /// Independent training runs per world per edge.
    pub runs_per_world: usize,
    /// Total trials on each side of the attack
    /// (`targets * runs_per_world`).
    pub trials_per_world: u64,
}

/// One audited condition (the private run, or the σ→0 ablation): its
/// attacks, per-edge score summaries, and the two `epsilon` values being
/// compared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSection {
    /// Both attack families, in fixed order.
    pub attacks: Vec<AttackSummary>,
    /// Per-target-edge mean released scores in each world.
    pub edges: Vec<EdgeAudit>,
    /// The strongest certified bound across the attacks.
    pub empirical_epsilon: f64,
    /// The accountant's spend stamped in the released bytes (largest
    /// stamp across the runs; `null` for non-private variants).
    pub stamped_epsilon: Option<f64>,
}

impl AuditSection {
    /// Builds a section from a harness outcome.
    pub fn from_outcome(outcome: &AuditOutcome) -> Self {
        Self {
            attacks: outcome.attacks.clone(),
            edges: outcome.edges.clone(),
            empirical_epsilon: outcome.empirical_epsilon,
            stamped_epsilon: outcome.stamped_epsilon,
        }
    }
}

/// The complete audit artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Schema version ([`AUDIT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Experiment tag, always `audit_membership`.
    pub experiment: String,
    /// Base seed the whole audit derives from.
    pub seed: u64,
    /// Confidence level of the Clopper–Pearson bounds.
    pub confidence: f64,
    /// The `delta` at which the empirical `epsilon` bound is stated.
    pub delta: f64,
    /// The audited graph.
    pub graph: GraphInfo,
    /// Panel geometry.
    pub panel: PanelInfo,
    /// Training configuration behind the audited releases.
    pub train: ReleaseProfile,
    /// The audited condition proper (the private variant).
    pub audit: AuditSection,
    /// The σ→0 sensitivity check (`null` when skipped).
    pub ablation: Option<AuditSection>,
    /// `consistent` (empirical bound within the stamp), `violation`
    /// (attack certified more `epsilon` than the stamp admits), or
    /// `unstamped` (the release carries no privacy stamp to compare
    /// against).
    pub verdict: String,
}

impl AuditReport {
    /// Assembles the artifact from harness outcomes, computing the
    /// verdict.
    pub fn assemble(
        cfg: &AuditConfig,
        train: ReleaseProfile,
        outcome: &AuditOutcome,
        ablation: Option<&AuditOutcome>,
    ) -> Self {
        let audit = AuditSection::from_outcome(outcome);
        let verdict = match audit.stamped_epsilon {
            Some(stamp) if audit.empirical_epsilon <= stamp => "consistent",
            Some(_) => "violation",
            None => "unstamped",
        };
        Self {
            schema_version: AUDIT_SCHEMA_VERSION,
            experiment: "audit_membership".to_string(),
            seed: cfg.seed,
            confidence: cfg.confidence,
            delta: cfg.delta,
            graph: GraphInfo {
                nodes: outcome.graph_nodes,
                edges: outcome.graph_edges,
                train_edges: outcome.train_edges,
            },
            panel: PanelInfo {
                targets: cfg.targets,
                runs_per_world: cfg.runs_per_world,
                trials_per_world: outcome.trials_per_world,
            },
            train,
            audit,
            ablation: ablation.map(AuditSection::from_outcome),
            verdict: verdict.to_string(),
        }
    }

    /// Renders the report as deterministic pretty-printed JSON
    /// (two-space indent, trailing newline) — the exact bytes of the
    /// `results/AUDIT_membership.json` artifact.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        render_pretty(&self.to_value(), 0, &mut out);
        out.push('\n');
        out
    }

    /// Writes the artifact to `path`, creating parent directories.
    ///
    /// # Errors
    /// [`AttackError::Io`] on filesystem failures.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), AttackError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_pretty())?;
        Ok(())
    }
}

/// Pretty-prints a value tree with two-space indentation. The vendored
/// `serde_json` only renders compact JSON; committed artifacts want to
/// diff line-by-line across PRs, so the report carries its own renderer
/// (scalar rendering delegates to `serde_json`, keeping the two forms
/// byte-compatible after whitespace removal).
fn render_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(depth + 1, out);
                render_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(depth, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                push_indent(depth + 1, out);
                out.push_str(&serde_json::to_string(key.as_str()).expect("string renders"));
                out.push_str(": ");
                render_pretty(val, depth + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(depth, out);
            out.push('}');
        }
        scalar => out.push_str(&serde_json::to_string(scalar).expect("scalar renders")),
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_outcome() -> AuditOutcome {
        AuditOutcome {
            attacks: vec![AttackSummary {
                name: "score_threshold".into(),
                threshold: 0.25,
                true_positives: 9,
                false_positives: 1,
                true_negatives: 9,
                false_negatives: 1,
                tpr: 0.9,
                fpr: 0.1,
                tpr_lo: 0.6,
                fpr_hi: 0.4,
                empirical_epsilon: 0.4,
            }],
            edges: vec![EdgeAudit {
                u: 3,
                v: 7,
                mean_score_with: 0.8,
                mean_score_without: -0.2,
            }],
            empirical_epsilon: 0.4,
            stamped_epsilon: Some(5.5),
            trials_per_world: 10,
            graph_nodes: 60,
            graph_edges: 180,
            train_edges: 162,
        }
    }

    fn fixture_report(stamp: Option<f64>, emp: f64) -> AuditReport {
        let mut outcome = fixture_outcome();
        outcome.stamped_epsilon = stamp;
        outcome.empirical_epsilon = emp;
        let cfg = AuditConfig::new(42);
        let train = ReleaseProfile {
            variant: "AdvSGM".into(),
            dim: 16,
            epochs: 8,
            batch_size: 32,
            learning_rate: 0.1,
            sigma: 5.0,
            epsilon_target: 6.0,
            delta: 1e-5,
        };
        AuditReport::assemble(&cfg, train, &outcome, None)
    }

    #[test]
    fn verdicts_cover_all_three_cases() {
        assert_eq!(fixture_report(Some(5.5), 0.4).verdict, "consistent");
        assert_eq!(fixture_report(Some(0.3), 0.4).verdict, "violation");
        assert_eq!(fixture_report(None, 3.0).verdict, "unstamped");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = fixture_report(Some(5.5), 0.4);
        let json = report.to_json_pretty();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // The compact form parses to the same report too.
        let compact = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&compact).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn pretty_rendering_is_deterministic_and_indented() {
        let report = fixture_report(Some(5.5), 0.4);
        let a = report.to_json_pretty();
        let b = report.to_json_pretty();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"experiment\": \"audit_membership\""));
        assert!(a.contains("  \"schema_version\": 1,\n"));
        // Null ablation renders as a literal null.
        assert!(a.contains("\"ablation\": null"));
    }

    #[test]
    fn empty_containers_render_compactly() {
        let mut out = String::new();
        render_pretty(&Value::Array(vec![]), 0, &mut out);
        assert_eq!(out, "[]");
        out.clear();
        render_pretty(&Value::Object(vec![]), 0, &mut out);
        assert_eq!(out, "{}");
    }
}
