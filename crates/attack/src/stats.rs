//! Exact binomial statistics for the audit's confidence machinery.
//!
//! Trial counts in an audit are small (tens to a few thousand paired
//! training runs), so nothing here approximates: tail probabilities are
//! exact binomial sums evaluated in log space, and the Clopper–Pearson
//! interval inverts those tails by bisection. No external statistics
//! dependency is needed — or available — in this workspace.

use crate::error::AttackError;

/// `ln(n!)` by direct summation — exact enough for the audit's trial
/// counts (`n` is a number of training runs, not a number of samples).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// `ln C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact upper tail `P(X >= k)` for `X ~ Binomial(n, p)`.
pub fn binomial_tail_ge(k: u64, n: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (ln_p, ln_q) = (p.ln(), (1.0 - p).ln());
    (k..=n)
        .map(|i| (ln_choose(n, i) + i as f64 * ln_p + (n - i) as f64 * ln_q).exp())
        .sum::<f64>()
        .min(1.0)
}

/// Exact lower tail `P(X <= k)` for `X ~ Binomial(n, p)`.
pub fn binomial_tail_le(k: u64, n: u64, p: f64) -> f64 {
    if k >= n {
        return 1.0;
    }
    1.0 - binomial_tail_ge(k + 1, n, p)
}

/// The two-sided Clopper–Pearson interval for `k` successes in `n`
/// trials at the given confidence level: the exact binomial interval,
/// inverted by bisection on the monotone tail functions.
///
/// # Errors
/// [`AttackError::InvalidParameter`] when `n == 0`, `k > n`, or the
/// confidence level is outside `(0, 1)`.
pub fn clopper_pearson(k: u64, n: u64, confidence: f64) -> Result<(f64, f64), AttackError> {
    if n == 0 {
        return Err(AttackError::invalid("trials", "need at least one trial"));
    }
    if k > n {
        return Err(AttackError::invalid(
            "successes",
            format!("{k} successes exceed {n} trials"),
        ));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(AttackError::invalid(
            "confidence",
            format!("must be in (0,1), got {confidence}"),
        ));
    }
    let half_alpha = (1.0 - confidence) / 2.0;
    // Lower bound: the smallest p with P(X >= k | p) >= alpha/2. The
    // upper tail is increasing in p, so bisect.
    let lo = if k == 0 {
        0.0
    } else {
        bisect(|p| binomial_tail_ge(k, n, p) - half_alpha)
    };
    // Upper bound: the largest p with P(X <= k | p) >= alpha/2. The
    // lower tail is decreasing in p, so bisect the negated difference.
    let hi = if k == n {
        1.0
    } else {
        bisect(|p| half_alpha - binomial_tail_le(k, n, p))
    };
    Ok((lo, hi))
}

/// Finds the root of an increasing function on `[0, 1]` by bisection.
/// 90 halvings put the answer well below `f64` noise for these tails.
fn bisect(f: impl Fn(f64) -> f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..90 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The empirical `epsilon` lower bound implied by a (TPR, FPR) operating
/// point under `(epsilon, delta)`-DP.
///
/// Any `(epsilon, delta)`-DP mechanism constrains every attack to
/// `TPR <= e^eps * FPR + delta` and, symmetrically on the rejection side,
/// `TNR <= e^eps * FNR + delta`. Feeding in a *conservative* operating
/// point — the Clopper–Pearson lower bound on TPR and upper bound on
/// FPR — turns the contrapositive into a one-sided statistical lower
/// bound on `epsilon`:
///
/// ```text
/// eps >= max( ln((tpr_lo - delta) / fpr_hi),
///             ln((1 - fpr_hi - delta) / (1 - tpr_lo)),
///             0 )
/// ```
///
/// Degenerate operating points (zero denominators, rates below `delta`)
/// contribute nothing rather than infinities.
pub fn empirical_epsilon(tpr_lo: f64, fpr_hi: f64, delta: f64) -> f64 {
    let mut eps = 0.0f64;
    if fpr_hi > 0.0 && tpr_lo - delta > 0.0 {
        eps = eps.max(((tpr_lo - delta) / fpr_hi).ln());
    }
    let (tnr_lo, fnr_hi) = (1.0 - fpr_hi, 1.0 - tpr_lo);
    if fnr_hi > 0.0 && tnr_lo - delta > 0.0 {
        eps = eps.max(((tnr_lo - delta) / fnr_hi).ln());
    }
    eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tails_match_hand_computed_binomials() {
        // X ~ Bin(4, 0.5): P(X >= 2) = 11/16, P(X <= 1) = 5/16.
        assert!((binomial_tail_ge(2, 4, 0.5) - 11.0 / 16.0).abs() < 1e-12);
        assert!((binomial_tail_le(1, 4, 0.5) - 5.0 / 16.0).abs() < 1e-12);
        // Edges.
        assert_eq!(binomial_tail_ge(0, 10, 0.3), 1.0);
        assert_eq!(binomial_tail_ge(11, 10, 0.3), 0.0);
        assert_eq!(binomial_tail_le(10, 10, 0.3), 1.0);
        assert_eq!(binomial_tail_ge(3, 10, 0.0), 0.0);
        assert_eq!(binomial_tail_ge(3, 10, 1.0), 1.0);
    }

    #[test]
    fn clopper_pearson_matches_reference_values() {
        // k=0: lower is exactly 0, upper is 1 - (alpha/2)^(1/n).
        let (lo, hi) = clopper_pearson(0, 20, 0.95).unwrap();
        assert_eq!(lo, 0.0);
        assert!((hi - (1.0 - 0.025f64.powf(1.0 / 20.0))).abs() < 1e-9);
        // k=n mirrors it.
        let (lo, hi) = clopper_pearson(20, 20, 0.95).unwrap();
        assert_eq!(hi, 1.0);
        assert!((lo - 0.025f64.powf(1.0 / 20.0)).abs() < 1e-9);
        // A standard textbook value: 10/100 at 95% => (0.0490, 0.1762).
        let (lo, hi) = clopper_pearson(10, 100, 0.95).unwrap();
        assert!((lo - 0.049005).abs() < 5e-4, "lo={lo}");
        assert!((hi - 0.176223).abs() < 5e-4, "hi={hi}");
    }

    #[test]
    fn clopper_pearson_bounds_bracket_the_point_estimate() {
        for (k, n) in [(0u64, 5u64), (1, 5), (3, 7), (7, 7), (50, 80)] {
            let (lo, hi) = clopper_pearson(k, n, 0.9).unwrap();
            let p_hat = k as f64 / n as f64;
            assert!(lo <= p_hat + 1e-12 && p_hat <= hi + 1e-12, "{k}/{n}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn clopper_pearson_rejects_bad_inputs() {
        assert!(clopper_pearson(0, 0, 0.95).is_err());
        assert!(clopper_pearson(6, 5, 0.95).is_err());
        assert!(clopper_pearson(1, 5, 1.0).is_err());
        assert!(clopper_pearson(1, 5, 0.0).is_err());
    }

    #[test]
    fn empirical_epsilon_known_points() {
        // A perfect attacker pinned at (tpr_lo, fpr_hi) = (0.9, 0.1)
        // with delta=0 certifies eps >= ln(9).
        let eps = empirical_epsilon(0.9, 0.1, 0.0);
        assert!((eps - 9.0f64.ln()).abs() < 1e-12);
        // The rejection side dominates when TPR is high but FPR is only
        // moderate: (0.9, 0.5) gives ln(1.8) on the TPR side but ln(5)
        // on the TNR/FNR side.
        let eps = empirical_epsilon(0.9, 0.5, 0.0);
        assert!((eps - (0.5f64 / 0.1).ln()).abs() < 1e-9);
        // A random-guessing attacker certifies nothing.
        assert_eq!(empirical_epsilon(0.5, 0.5, 0.0), 0.0);
        // TPR below FPR (a bad attack) still floors at zero.
        assert_eq!(empirical_epsilon(0.2, 0.6, 1e-5), 0.0);
        // Degenerate denominators do not produce infinities.
        assert!(empirical_epsilon(1.0, 0.0, 0.0).is_finite());
        assert_eq!(empirical_epsilon(1.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn empirical_epsilon_monotone_in_the_operating_point() {
        // Better attacks (higher tpr_lo, lower fpr_hi) never certify less.
        let base = empirical_epsilon(0.7, 0.2, 1e-5);
        assert!(empirical_epsilon(0.8, 0.2, 1e-5) >= base);
        assert!(empirical_epsilon(0.7, 0.1, 1e-5) >= base);
    }
}
