//! The parallel sharded training engine (DESIGN.md §7).
//!
//! [`ShardedTrainer`] runs the same Algorithm 3 as [`crate::trainer::Trainer`]
//! but splits every batch across a pool of worker threads. The split follows
//! the structure of the paper's own privacy argument: Theorem 6 releases a
//! *sum of independently clipped per-pair gradients* plus one batch noise
//! vector, so per-pair work (fake-neighbor generation, closed-form
//! gradients, clipping) is embarrassingly parallel and only the final
//! sum-and-apply is sequential. Concretely, each discriminator update is:
//!
//! 1. **Produce** — a dedicated producer thread runs Algorithm 2
//!    ([`BatchProvider::sample_disc_iteration`]) ahead of the consumer
//!    through a bounded queue, so sampling for iteration `t + 1` overlaps
//!    the gradient work of iteration `t`;
//! 2. **Shard** — the batch is cut into fixed-size shards
//!    ([`AdvSgmConfig::shard_size`], default `ceil(B / threads)`); shard
//!    `k` of update `u` gets its own RNG stream
//!    `seeded(derive_seed(derive_seed(disc_base, u), 1 + k))`;
//! 3. **Map** — workers compute clipped per-pair gradient contributions
//!    into **thread-local accumulators** (a `row -> (grad sum, touch
//!    count)` map per shard, summed in pair order);
//! 4. **Reduce** — the main thread folds shard accumulators **in shard
//!    order**, so each row's floating-point sum has one fixed association
//!    regardless of OS scheduling;
//! 5. **Apply** — the Theorem-6 batch noise (drawn once per update from
//!    the update's stream 0) and the per-row touch-count normalisation
//!    (DESIGN.md §5) are applied exactly as in the sequential trainer.
//!
//! # Determinism contract
//!
//! * `threads = 1` (or an unset auto) is **bitwise-identical** to the
//!   sequential [`Trainer`]: the engine simply delegates to it, so there
//!   is no second single-threaded code path to drift.
//! * `threads = N > 1` is **run-to-run deterministic** for a fixed
//!   `(seed, threads, shard_size)` triple, but follows a different (equally
//!   valid) random trajectory than the sequential engine, because per-shard
//!   RNG streams replace one interleaved stream.
//! * **Privacy accounting is engine-invariant**: batch composition, the
//!   `(sigma, gamma)` schedule, and the stopping rule depend only on the
//!   configuration, so `disc_updates`, `epochs_run`, `stopped_by_budget`
//!   and the reported `epsilon`/`delta` spend are bitwise-equal across all
//!   thread counts (property-tested in `tests/sharded_determinism.rs`).

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver};

use advsgm_graph::sampling::negative::NegativePair;
use advsgm_graph::{Edge, Graph, GraphError};
use advsgm_linalg::rng::{derive_seed, gaussian_vec, seeded};
use advsgm_linalg::vector;
use advsgm_parallel::ThreadPool;
use advsgm_privacy::RdpAccountant;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::config::AdvSgmConfig;
use crate::error::CoreError;
use crate::grad::{advsgm_augment, dpasgm_augment, sgm_negative_grads, sgm_positive_grads};
use crate::loss::novel_loss_batch;
use crate::model::{Embeddings, GeneratorPair};
use crate::sampler::{BatchProvider, DiscBatch};
use crate::sigmoid::SigmoidKind;
use crate::trainer::{gradient_noise_std, record_and_check, TrainOutcome, Trainer, DPASGM_LAMBDA};
use crate::variants::ModelVariant;
use crate::weighting::WeightMode;

/// Stream tag for the init RNG — identical to the sequential trainer's so
/// both engines start from the same parameters.
const STREAM_INIT: u64 = 0xAD5;
/// Stream tag for the producer thread's Algorithm 2 sampling.
const STREAM_SAMPLER: u64 = 0x5A11;
/// Stream tag for discriminator update seeds.
const STREAM_DISC: u64 = 0xD15C;
/// Stream tag for generator update seeds.
const STREAM_GEN: u64 = 0x6E47;
/// Stream tag for the epoch-loss diagnostic draws.
const STREAM_LOSS: u64 = 0x1055;

/// Bounded depth of the producer -> consumer batch queue: enough for
/// sampling to run ahead of gradient work, small enough to cap memory at a
/// few batches.
const QUEUE_DEPTH: usize = 4;

/// Items flowing from the producer thread to the training loop.
enum Produced {
    /// One discriminator update batch.
    Update(DiscBatch),
    /// The epoch-loss diagnostic batch, sent once per epoch.
    Loss(Vec<Edge>, Vec<NegativePair>),
    /// Sampling failed; training must abort with this error.
    Failed(GraphError),
}

/// A sparse per-row gradient accumulator: `row -> (grad sum, touch count)`.
type RowAcc = HashMap<usize, (Vec<f64>, usize)>;

/// Multi-threaded Algorithm 3 with Hogwild-style sharding and a
/// deterministic reduction (module docs have the full contract).
///
/// At `threads = 1` this *is* the sequential [`Trainer`] (by delegation);
/// at `threads = N` it is run-to-run deterministic under a fixed seed.
pub struct ShardedTrainer {
    inner: Inner,
}

enum Inner {
    Sequential(Box<Trainer>),
    Parallel(Box<ParallelTrainer>),
}

impl ShardedTrainer {
    /// Builds a sharded trainer; resolves [`AdvSgmConfig::num_threads`]
    /// (0 = `ADVSGM_THREADS`, else 1) and validates the configuration.
    ///
    /// # Errors
    /// Configuration or sampler-construction failures.
    pub fn new(graph: &Graph, cfg: AdvSgmConfig) -> Result<Self, CoreError> {
        let threads = cfg.effective_threads();
        let inner = if threads <= 1 {
            Inner::Sequential(Box::new(Trainer::new(graph, cfg)?))
        } else {
            Inner::Parallel(Box::new(ParallelTrainer::new(graph, cfg, threads)?))
        };
        Ok(Self { inner })
    }

    /// The number of worker threads this trainer will use.
    pub fn threads(&self) -> usize {
        match &self.inner {
            Inner::Sequential(_) => 1,
            Inner::Parallel(p) => p.threads,
        }
    }

    /// The validated configuration this trainer was built with (see
    /// [`Trainer::config`]).
    pub fn config(&self) -> &AdvSgmConfig {
        match &self.inner {
            Inner::Sequential(t) => t.config(),
            Inner::Parallel(p) => &p.cfg,
        }
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion) and returns
    /// the outcome — the sharded counterpart of [`Trainer::run`].
    ///
    /// # Errors
    /// Propagates substrate failures; budget exhaustion is *not* an error
    /// (it sets [`TrainOutcome::stopped_by_budget`]).
    ///
    /// # Examples
    /// ```
    /// use advsgm_core::{AdvSgmConfig, ModelVariant, ShardedTrainer};
    /// use advsgm_graph::generators::classic::karate_club;
    ///
    /// let graph = karate_club();
    /// let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm).with_threads(2);
    /// let trainer = ShardedTrainer::new(&graph, cfg).unwrap();
    /// assert_eq!(trainer.threads(), 2);
    /// let out = trainer.train(&graph).unwrap();
    /// assert_eq!(out.node_vectors.rows(), graph.num_nodes());
    /// assert!(out.disc_updates > 0);
    /// ```
    pub fn train(self, graph: &Graph) -> Result<TrainOutcome, CoreError> {
        match self.inner {
            Inner::Sequential(t) => t.run(graph),
            Inner::Parallel(p) => p.train(graph),
        }
    }

    /// Convenience: build + train in one call.
    ///
    /// # Errors
    /// See [`ShardedTrainer::new`] / [`ShardedTrainer::train`].
    pub fn fit(graph: &Graph, cfg: AdvSgmConfig) -> Result<TrainOutcome, CoreError> {
        ShardedTrainer::new(graph, cfg)?.train(graph)
    }
}

/// The `threads > 1` engine.
struct ParallelTrainer {
    cfg: AdvSgmConfig,
    kind: SigmoidKind,
    emb: Embeddings,
    gens: GeneratorPair,
    provider: Option<BatchProvider>,
    accountant: Option<RdpAccountant>,
    threads: usize,
}

impl ParallelTrainer {
    fn new(graph: &Graph, cfg: AdvSgmConfig, threads: usize) -> Result<Self, CoreError> {
        cfg.validate()?;
        if graph.num_edges() == 0 {
            return Err(CoreError::Config {
                field: "graph",
                reason: "cannot train on a graph with no edges".into(),
            });
        }
        let kind = if cfg.variant.uses_constrained_sigmoid() {
            SigmoidKind::constrained(cfg.sigmoid_a, cfg.sigmoid_b)
        } else {
            SigmoidKind::Plain
        };
        // Same init stream as the sequential trainer: both engines start
        // from identical parameters and only the training trajectories
        // differ.
        let mut init_rng = seeded(derive_seed(cfg.seed, STREAM_INIT));
        let emb = Embeddings::init(graph.num_nodes(), cfg.dim, &mut init_rng);
        let gens = GeneratorPair::new(graph.num_nodes(), cfg.dim, &mut init_rng);
        let provider = BatchProvider::new(
            graph,
            cfg.batch_size,
            cfg.negatives,
            cfg.negative_distribution,
        )?;
        let accountant = cfg.variant.is_private().then(RdpAccountant::new);
        Ok(Self {
            cfg,
            kind,
            emb,
            gens,
            provider: Some(provider),
            accountant,
            threads,
        })
    }

    /// Pairs per shard for a batch of `count` pairs.
    fn shard_len(&self, count: usize) -> usize {
        if self.cfg.shard_size > 0 {
            self.cfg.shard_size
        } else {
            count.div_ceil(self.threads).max(1)
        }
    }

    fn train(mut self, graph: &Graph) -> Result<TrainOutcome, CoreError> {
        let mut pool = ThreadPool::new(self.threads);
        let mut provider = self.provider.take().expect("provider present until train");
        // Theorem 7's amplification rates, captured before the provider
        // moves to the producer thread.
        let gamma_pos = provider.gamma_pos();
        let gamma_neg = provider.gamma_neg();
        let epochs = self.cfg.epochs;
        let disc_iters = self.cfg.disc_iters;
        let sampler_seed = derive_seed(self.cfg.seed, STREAM_SAMPLER);

        let (stopped, epochs_run, disc_updates, epoch_losses) =
            std::thread::scope(|scope| -> Result<(bool, usize, u64, Vec<f64>), CoreError> {
                let (tx, rx) = sync_channel::<Produced>(QUEUE_DEPTH);
                // Producer: runs Algorithm 2 ahead of the training loop.
                // Ends when the full schedule is produced or when the
                // consumer hangs up (early stop / error).
                scope.spawn(move || {
                    let mut rng = seeded(sampler_seed);
                    'produce: for _ in 0..epochs {
                        for _ in 0..disc_iters {
                            match provider.sample_disc_iteration(graph, &mut rng) {
                                Ok((pos, neg)) => {
                                    if tx.send(Produced::Update(pos)).is_err()
                                        || tx.send(Produced::Update(neg)).is_err()
                                    {
                                        break 'produce;
                                    }
                                }
                                Err(e) => {
                                    let _ = tx.send(Produced::Failed(e));
                                    break 'produce;
                                }
                            }
                        }
                        let loss_pos = match provider.positives(graph, &mut rng) {
                            Ok(v) => v,
                            Err(e) => {
                                let _ = tx.send(Produced::Failed(e));
                                break 'produce;
                            }
                        };
                        let loss_neg = provider.negatives(&loss_pos, &mut rng);
                        if tx.send(Produced::Loss(loss_pos, loss_neg)).is_err() {
                            break 'produce;
                        }
                    }
                });
                self.consume(graph, &mut pool, &rx, gamma_pos, gamma_neg)
            })?;

        let (epsilon_spent, delta_spent) = match &self.accountant {
            None => (None, None),
            Some(acc) => {
                let snap = acc.snapshot(self.cfg.epsilon, self.cfg.delta)?;
                (Some(snap.epsilon_spent), Some(snap.delta_spent))
            }
        };
        Ok(TrainOutcome {
            context_vectors: self.emb.w_out().clone(),
            node_vectors: self.emb.into_node_vectors(),
            variant: self.cfg.variant,
            epochs_run,
            disc_updates,
            stopped_by_budget: stopped,
            epsilon_spent,
            delta_spent,
            epoch_losses,
        })
    }

    /// The training loop proper: consumes the producer's queue in the
    /// fixed Algorithm 3 schedule.
    fn consume(
        &mut self,
        graph: &Graph,
        pool: &mut ThreadPool,
        rx: &Receiver<Produced>,
        gamma_pos: f64,
        gamma_neg: f64,
    ) -> Result<(bool, usize, u64, Vec<f64>), CoreError> {
        let epochs = self.cfg.epochs;
        let disc_base = derive_seed(self.cfg.seed, STREAM_DISC);
        let gen_base = derive_seed(self.cfg.seed, STREAM_GEN);
        let mut loss_rng = seeded(derive_seed(self.cfg.seed, STREAM_LOSS));
        let mut stopped = false;
        let mut epochs_run = 0usize;
        let mut disc_updates = 0u64;
        let mut update_idx = 0u64;
        let mut gen_idx = 0u64;
        let mut epoch_losses = Vec::with_capacity(epochs);

        'training: for _epoch in 0..epochs {
            for _ in 0..self.cfg.disc_iters {
                for gamma in [gamma_pos, gamma_neg] {
                    let batch = match recv_item(rx)? {
                        Produced::Update(b) => b,
                        _ => unreachable!("producer schedule mismatch: expected update"),
                    };
                    self.par_disc_update(pool, &batch, derive_seed(disc_base, update_idx));
                    update_idx += 1;
                    disc_updates += 1;
                    if record_and_check(&mut self.accountant, &self.cfg, gamma)? {
                        stopped = true;
                        break 'training;
                    }
                }
            }
            if self.cfg.variant.is_adversarial() {
                for _ in 0..self.cfg.gen_iters {
                    self.par_generator_update(pool, graph, derive_seed(gen_base, gen_idx));
                    gen_idx += 1;
                }
            }
            epochs_run += 1;
            let (loss_pos, loss_neg) = match recv_item(rx)? {
                Produced::Loss(p, n) => (p, n),
                _ => unreachable!("producer schedule mismatch: expected loss batch"),
            };
            epoch_losses.push(self.epoch_loss(&loss_pos, &loss_neg, &mut loss_rng));
        }
        Ok((stopped, epochs_run, disc_updates, epoch_losses))
    }

    /// One discriminator update, sharded (module docs, steps 2–5).
    fn par_disc_update(&mut self, pool: &mut ThreadPool, batch: &DiscBatch, update_seed: u64) {
        let r = self.cfg.dim;
        let count = batch.pairs.len();
        if count == 0 {
            // Cannot happen with the current producer (batch >= 1 after
            // clamping), but an empty update is a well-defined no-op.
            return;
        }
        let variant = self.cfg.variant;
        let clip = self.cfg.clip;
        let kind = self.kind;
        let positive = batch.positive;
        let shard_len = self.shard_len(count);

        // Theorem 6's per-batch noise (N_{D,1}, N_{D,2}): one draw per
        // update from the update's stream 0, like the sequential engine.
        let noise_std = gradient_noise_std(&self.cfg);
        let mut noise_rng = seeded(derive_seed(update_seed, 0));
        let n_in = gaussian_vec(&mut noise_rng, noise_std, r);
        let n_out = gaussian_vec(&mut noise_rng, noise_std, r);

        // Phase A (adversarial variants): generate all fake neighbors in
        // parallel — the only RNG-consuming per-pair work — with one
        // derived stream per shard, and reduce the batch means in shard
        // order (the centering control variate needs the whole batch).
        let adversarial = variant.is_adversarial();
        let (fakes, mean_j, mean_i) = if adversarial {
            let gens = &self.gens;
            let shard_out = pool.map_chunks(&batch.pairs, shard_len, |k, _offset, chunk| {
                let mut rng = seeded(derive_seed(update_seed, 1 + k as u64));
                let mut local = Vec::with_capacity(chunk.len());
                let mut sum_j = vec![0.0; r];
                let mut sum_i = vec![0.0; r];
                for &(i, j) in chunk {
                    let fj = gens.for_i.generate(j, &mut rng).v;
                    let fi = gens.for_j.generate(i, &mut rng).v;
                    vector::add_assign(&mut sum_j, &fj);
                    vector::add_assign(&mut sum_i, &fi);
                    local.push((fj, fi));
                }
                (local, sum_j, sum_i)
            });
            let mut fakes = Vec::with_capacity(count);
            let mut mean_j = vec![0.0; r];
            let mut mean_i = vec![0.0; r];
            for (local, sum_j, sum_i) in shard_out {
                fakes.extend(local);
                vector::add_assign(&mut mean_j, &sum_j);
                vector::add_assign(&mut mean_i, &sum_i);
            }
            vector::scale(&mut mean_j, 1.0 / count as f64);
            vector::scale(&mut mean_i, 1.0 / count as f64);
            (fakes, mean_j, mean_i)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        // Phase B: clipped per-pair gradients into thread-local
        // accumulators. RNG-free, so shards only need their data.
        let emb = &self.emb;
        let fakes = &fakes;
        let mean_j = &mean_j;
        let mean_i = &mean_i;
        let shard_accs = pool.map_chunks(&batch.pairs, shard_len, |_k, offset, chunk| {
            let mut acc_in: RowAcc = HashMap::new();
            let mut acc_out: RowAcc = HashMap::new();
            for (local_idx, &(i, j)) in chunk.iter().enumerate() {
                let idx = offset + local_idx;
                let vi = emb.input(i);
                let vj = emb.output(j);
                let grads = if positive {
                    sgm_positive_grads(kind, vi, vj)
                } else {
                    sgm_negative_grads(kind, vi, vj)
                };
                let mut gi = grads.first;
                let mut gj = grads.second;
                match variant {
                    ModelVariant::AdvSgm | ModelVariant::AdvSgmNoDp => {
                        let centered_j = vector::sub(&fakes[idx].0, mean_j);
                        let centered_i = vector::sub(&fakes[idx].1, mean_i);
                        advsgm_augment(&mut gi, &centered_j);
                        advsgm_augment(&mut gj, &centered_i);
                    }
                    ModelVariant::DpAsgm => {
                        dpasgm_augment(kind, DPASGM_LAMBDA, vi, &fakes[idx].0, &mut gi);
                        dpasgm_augment(kind, DPASGM_LAMBDA, vj, &fakes[idx].1, &mut gj);
                    }
                    ModelVariant::Sgm | ModelVariant::DpSgm => {}
                }
                if variant != ModelVariant::Sgm {
                    vector::clip_l2(&mut gi, clip);
                    vector::clip_l2(&mut gj, clip);
                }
                accumulate(&mut acc_in, i, gi);
                accumulate(&mut acc_out, j, gj);
            }
            (acc_in, acc_out)
        });

        // Deterministic reduction: fold shard accumulators in shard order,
        // so every row's gradient sum has one fixed floating-point
        // association no matter which worker computed which shard.
        let mut acc_in: RowAcc = HashMap::new();
        let mut acc_out: RowAcc = HashMap::new();
        for (shard_in, shard_out) in shard_accs {
            merge_acc(&mut acc_in, shard_in);
            merge_acc(&mut acc_out, shard_out);
        }

        // Apply: identical to the sequential engine (per-row noise share +
        // touch-count normalisation; DESIGN.md §5). Row updates are
        // independent, so map iteration order cannot affect the result.
        let eta = self.cfg.eta_d;
        let project = self.cfg.project_rows && variant != ModelVariant::Sgm;
        for (i, (mut g, c)) in acc_in {
            vector::fused_axpy_scale(&mut g, c as f64, &n_in, 1.0 / c as f64);
            self.emb.step_input(i, eta, &g, project);
        }
        for (j, (mut g, c)) in acc_out {
            vector::fused_axpy_scale(&mut g, c as f64, &n_out, 1.0 / c as f64);
            self.emb.step_output(j, eta, &g, project);
        }
    }

    /// One generator iteration (Algorithm 3 lines 14–18), sharded over the
    /// `B (k + 1)` samples with the same per-shard stream scheme.
    fn par_generator_update(&mut self, pool: &mut ThreadPool, graph: &Graph, gen_seed: u64) {
        let r = self.cfg.dim;
        let sample_count = self.cfg.batch_size * (self.cfg.negatives + 1);
        let shard_len = self.shard_len(sample_count);
        let parts = sample_count.div_ceil(shard_len);
        let noise_std = gradient_noise_std(&self.cfg);
        let mut noise_rng = seeded(derive_seed(gen_seed, 0));
        let ng1 = gaussian_vec(&mut noise_rng, noise_std, r);
        let ng2 = gaussian_vec(&mut noise_rng, noise_std, r);

        let emb = &self.emb;
        let gens = &self.gens;
        let kind = self.kind;
        let edges = graph.edges();
        let ng1 = &ng1;
        let ng2 = &ng2;
        let shard_grads = pool.map_parts(sample_count, parts, |k, range| {
            let mut rng = seeded(derive_seed(gen_seed, 1 + k as u64));
            let mut grads_j: RowAcc = HashMap::new();
            let mut grads_i: RowAcc = HashMap::new();
            for _ in range {
                let e = edges[rng.gen_range(0..edges.len())];
                let (s, t) = if rng.gen::<bool>() {
                    (e.u().index(), e.v().index())
                } else {
                    (e.v().index(), e.u().index())
                };
                let vi = emb.input(s);
                let vj = emb.output(t);
                let f1 = gens.for_i.generate(t, &mut rng);
                let (s1_fake, s1_noise) = vector::dot2(vi, &f1.v, ng1);
                let c1 = -kind.neg_log_one_minus_grad(s1_fake + s1_noise);
                let up1 = vector::scaled(c1, vi);
                gens.for_i.accumulate_grad(&f1, &up1, &mut grads_j);
                let f2 = gens.for_j.generate(s, &mut rng);
                let (s2_fake, s2_noise) = vector::dot2(vj, &f2.v, ng2);
                let c2 = -kind.neg_log_one_minus_grad(s2_fake + s2_noise);
                let up2 = vector::scaled(c2, vj);
                gens.for_j.accumulate_grad(&f2, &up2, &mut grads_i);
            }
            (grads_j, grads_i)
        });

        let mut grads_j: RowAcc = HashMap::new();
        let mut grads_i: RowAcc = HashMap::new();
        for (shard_j, shard_i) in shard_grads {
            merge_acc(&mut grads_j, shard_j);
            merge_acc(&mut grads_i, shard_i);
        }
        self.gens.for_i.step(self.cfg.eta_g, &grads_j);
        self.gens.for_j.step(self.cfg.eta_g, &grads_i);
    }

    /// Per-epoch `|L_Nov|` diagnostic on the producer's loss batch.
    fn epoch_loss(
        &mut self,
        positives: &[Edge],
        negatives: &[NegativePair],
        rng: &mut SmallRng,
    ) -> f64 {
        let mode = if self.cfg.variant.is_adversarial() {
            WeightMode::InverseS
        } else {
            WeightMode::Fixed(0.0)
        };
        novel_loss_batch(
            self.kind,
            mode,
            &self.emb,
            &self.gens,
            positives,
            negatives,
            gradient_noise_std(&self.cfg),
            rng,
        )
        .abs()
    }
}

/// Receives the next produced item, surfacing producer-side failures.
fn recv_item(rx: &Receiver<Produced>) -> Result<Produced, CoreError> {
    match rx.recv() {
        Ok(Produced::Failed(e)) => Err(e.into()),
        Ok(item) => Ok(item),
        Err(_) => Err(CoreError::Config {
            field: "sampler",
            reason: "batch producer terminated before the training schedule completed".into(),
        }),
    }
}

/// Adds one pair's gradient into a row accumulator (pair order within a
/// shard, shard order across shards — both deterministic).
fn accumulate(acc: &mut RowAcc, row: usize, grad: Vec<f64>) {
    match acc.get_mut(&row) {
        Some((sum, c)) => {
            vector::add_assign(sum, &grad);
            *c += 1;
        }
        None => {
            acc.insert(row, (grad, 1));
        }
    }
}

/// Folds one shard's accumulator into the global one. Rows are summed in
/// the order shards are folded, which the caller fixes to shard order.
fn merge_acc(into: &mut RowAcc, from: RowAcc) {
    for (row, (grad, c)) in from {
        match into.get_mut(&row) {
            Some((sum, count)) => {
                vector::add_assign(sum, &grad);
                *count += c;
            }
            None => {
                into.insert(row, (grad, c));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};

    fn small_graph() -> Graph {
        let mut rng = seeded(99);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_edges: 600,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    fn bits(m: &advsgm_linalg::DenseMatrix) -> Vec<u64> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn one_thread_is_bitwise_identical_to_sequential() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let cfg = AdvSgmConfig::test_small(v).with_threads(1);
            let seq = Trainer::fit(&g, cfg.clone()).unwrap();
            let sh = ShardedTrainer::fit(&g, cfg).unwrap();
            assert_eq!(
                bits(&seq.node_vectors),
                bits(&sh.node_vectors),
                "{v}: threads=1 must reproduce the sequential trainer bit-for-bit"
            );
            assert_eq!(seq.disc_updates, sh.disc_updates);
            assert_eq!(seq.epoch_losses, sh.epoch_losses);
        }
    }

    #[test]
    fn parallel_training_is_run_to_run_deterministic() {
        let g = small_graph();
        for v in [ModelVariant::AdvSgm, ModelVariant::Sgm] {
            let cfg = AdvSgmConfig::test_small(v).with_threads(4);
            let a = ShardedTrainer::fit(&g, cfg.clone()).unwrap();
            let b = ShardedTrainer::fit(&g, cfg).unwrap();
            assert_eq!(
                bits(&a.node_vectors),
                bits(&b.node_vectors),
                "{v}: threads=4 must be run-to-run deterministic"
            );
            assert_eq!(a.epoch_losses, b.epoch_losses);
        }
    }

    #[test]
    fn shard_size_changes_trajectory_but_stays_deterministic() {
        let g = small_graph();
        let base = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(3);
        let a1 = ShardedTrainer::fit(&g, base.clone().with_shard_size(4)).unwrap();
        let a2 = ShardedTrainer::fit(&g, base.clone().with_shard_size(4)).unwrap();
        assert_eq!(bits(&a1.node_vectors), bits(&a2.node_vectors));
        let b = ShardedTrainer::fit(&g, base.with_shard_size(5)).unwrap();
        assert_ne!(
            bits(&a1.node_vectors),
            bits(&b.node_vectors),
            "different sharding must follow a different derived-stream trajectory"
        );
    }

    #[test]
    fn accounting_is_engine_invariant() {
        // Budget spend and schedule-derived counters must not depend on
        // the execution engine or thread count.
        let g = karate_club();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epochs = 50;
        cfg.disc_iters = 10;
        cfg.sigma = 1.0;
        cfg.epsilon = 0.8; // stops early
        let seq = Trainer::fit(&g, cfg.clone()).unwrap();
        for threads in [2usize, 4] {
            let sh = ShardedTrainer::fit(&g, cfg.clone().with_threads(threads)).unwrap();
            assert_eq!(seq.disc_updates, sh.disc_updates, "threads={threads}");
            assert_eq!(seq.epochs_run, sh.epochs_run);
            assert_eq!(seq.stopped_by_budget, sh.stopped_by_budget);
            assert!(sh.stopped_by_budget, "this config must exhaust the budget");
            assert_eq!(seq.epsilon_spent, sh.epsilon_spent);
            assert_eq!(seq.delta_spent, sh.delta_spent);
        }
    }

    #[test]
    fn parallel_sgm_learns_link_structure() {
        // The parallel path must actually train, not just not crash:
        // positive pairs score above random pairs after a few epochs.
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::Sgm).with_threads(4);
        cfg.epochs = 12;
        cfg.disc_iters = 20;
        cfg.batch_size = 64;
        let out = ShardedTrainer::fit(&g, cfg).unwrap();
        let emb = &out.node_vectors;
        let ctx = &out.context_vectors;
        let mut rng = seeded(5);
        let mut pos_mean = 0.0;
        for e in g.edges() {
            pos_mean += vector::dot(emb.row(e.u().index()), ctx.row(e.v().index()));
        }
        pos_mean /= g.num_edges() as f64;
        let mut neg_mean = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let a = rng.gen_range(0..g.num_nodes());
            let b = rng.gen_range(0..g.num_nodes());
            neg_mean += vector::dot(emb.row(a), ctx.row(b));
        }
        neg_mean /= trials as f64;
        assert!(
            pos_mean > neg_mean,
            "positive mean {pos_mean} not above random mean {neg_mean}"
        );
    }

    #[test]
    fn every_variant_trains_in_parallel_without_error() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let cfg = AdvSgmConfig::test_small(v)
                .with_threads(4)
                .with_shard_size(7);
            let out = ShardedTrainer::fit(&g, cfg).unwrap();
            assert_eq!(out.node_vectors.rows(), g.num_nodes());
            assert!(out.disc_updates > 0, "{v}: no updates");
            assert!(
                out.node_vectors.as_slice().iter().all(|x| x.is_finite()),
                "{v}: non-finite embedding"
            );
        }
    }

    #[test]
    fn auto_thread_resolution_trains_and_is_deterministic() {
        // num_threads = 0 resolves via ADVSGM_THREADS (CI runs this suite
        // with it set to 4, routing the full pipeline through the parallel
        // path) and falls back to the sequential engine otherwise; either
        // way training must succeed and be reproducible.
        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        assert_eq!(cfg.num_threads, 0, "test_small must leave threads auto");
        let trainer = ShardedTrainer::new(&g, cfg.clone()).unwrap();
        assert_eq!(trainer.threads(), cfg.effective_threads());
        let a = trainer.train(&g).unwrap();
        let b = ShardedTrainer::fit(&g, cfg).unwrap();
        assert_eq!(bits(&a.node_vectors), bits(&b.node_vectors));
    }

    #[test]
    fn rows_stay_in_unit_ball_when_projecting() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(4);
        cfg.project_rows = true;
        let out = ShardedTrainer::fit(&g, cfg).unwrap();
        for i in 0..out.node_vectors.rows() {
            assert!(vector::norm2(out.node_vectors.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(5, vec![], None);
        let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm).with_threads(4);
        assert!(ShardedTrainer::new(&g, cfg).is_err());
    }
}
