//! The parallel training facade over the session layer (DESIGN.md §7/§10).
//!
//! [`ShardedTrainer`] runs the same Algorithm 3 as [`crate::Trainer`] —
//! literally the same loop, `session::run_schedule` — but executes each
//! step through the sharded producer/worker engine
//! (`session::sharded::ShardedEngine`): Algorithm-2 batch
//! production one iteration ahead on a dedicated thread, per-pair clipped
//! gradients in thread-local shards with derived per-`(update, shard)`
//! RNG streams, and a deterministic shard-order reduction.
//!
//! # Determinism contract
//!
//! * `threads = 1` (or an unset auto) is **bitwise-identical** to the
//!   sequential [`Trainer`]: the facade simply delegates to it, so there
//!   is no second single-threaded code path to drift.
//! * `threads = N > 1` is **run-to-run deterministic** for a fixed
//!   `(seed, threads, shard_size)` triple, but follows a different (equally
//!   valid) random trajectory than the sequential engine, because per-shard
//!   RNG streams replace one interleaved stream.
//! * **Privacy accounting is engine-invariant**: batch composition, the
//!   `(sigma, gamma)` schedule, and the stopping rule depend only on the
//!   configuration, so `disc_updates`, `epochs_run`, `stopped_by_budget`
//!   and the reported `epsilon`/`delta` spend are bitwise-equal across all
//!   thread counts (property-tested in `tests/sharded_determinism.rs`).
//! * **Checkpoint/resume is bitwise-exact**: a [`CheckpointState`]
//!   captured through [`crate::session::TrainHooks`] and resumed with
//!   [`ShardedTrainer::resume`] continues the identical trajectory
//!   (`tests/checkpoint_resume.rs`).

use std::sync::mpsc::sync_channel;

use advsgm_graph::Graph;
use advsgm_linalg::rng::{derive_seed, rng_from_state, rng_state, seeded};
use advsgm_parallel::ThreadPool;

use crate::config::AdvSgmConfig;
use crate::error::CoreError;
use crate::sampler::BatchProvider;
use crate::session::sharded::{
    produce_batches, ProducePlan, ProducerSnapshot, ShardedEngine, QUEUE_DEPTH,
};
use crate::session::{
    run_schedule, CheckpointState, EngineKind, NoHooks, SessionCore, TrainHooks, STREAM_LOSS,
    STREAM_SAMPLER,
};
use crate::trainer::{TrainOutcome, Trainer};

/// Multi-threaded Algorithm 3 with Hogwild-style sharding and a
/// deterministic reduction (module docs have the full contract).
///
/// At `threads = 1` this *is* the sequential [`Trainer`] (by delegation);
/// at `threads = N` it is run-to-run deterministic under a fixed seed.
pub struct ShardedTrainer {
    inner: Inner,
}

enum Inner {
    Sequential(Box<Trainer>),
    Parallel(Box<ParallelSession>),
}

impl ShardedTrainer {
    /// Builds a sharded trainer; resolves [`AdvSgmConfig::num_threads`]
    /// (0 = `ADVSGM_THREADS`, else 1) and validates the configuration.
    ///
    /// # Errors
    /// Configuration or sampler-construction failures.
    pub fn new(graph: &Graph, cfg: AdvSgmConfig) -> Result<Self, CoreError> {
        let threads = cfg.effective_threads();
        let inner = if threads <= 1 {
            Inner::Sequential(Box::new(Trainer::new(graph, cfg)?))
        } else {
            Inner::Parallel(Box::new(ParallelSession::new(graph, cfg, threads)?))
        };
        Ok(Self { inner })
    }

    /// Rebuilds a trainer mid-schedule from a checkpoint captured through
    /// [`TrainHooks::on_checkpoint`], dispatching on the engine that
    /// captured it (a sequential checkpoint resumes sequentially, a
    /// sharded one on its recorded thread count — trajectories are
    /// engine-specific, so the engine is pinned, not re-resolved).
    ///
    /// # Errors
    /// [`CoreError::Checkpoint`] when the state is inconsistent or does
    /// not match `graph`.
    pub fn resume(graph: &Graph, state: &CheckpointState) -> Result<Self, CoreError> {
        let inner = match state.engine {
            EngineKind::Sequential => Inner::Sequential(Box::new(Trainer::resume(graph, state)?)),
            EngineKind::Sharded => {
                let threads = state.config.num_threads;
                if threads < 2 {
                    return Err(CoreError::Checkpoint {
                        reason: format!(
                            "sharded checkpoint records {threads} thread(s); need >= 2"
                        ),
                    });
                }
                Inner::Parallel(Box::new(ParallelSession::resume(graph, state, threads)?))
            }
            EngineKind::Partitioned => {
                return Err(CoreError::Checkpoint {
                    reason: "checkpoint was captured by the partitioned out-of-core engine; \
                             resume it through PartitionedTrainer::resume"
                        .into(),
                })
            }
        };
        Ok(Self { inner })
    }

    /// The number of worker threads this trainer will use.
    pub fn threads(&self) -> usize {
        match &self.inner {
            Inner::Sequential(_) => 1,
            Inner::Parallel(p) => p.threads,
        }
    }

    /// The validated configuration this trainer was built with (see
    /// [`Trainer::config`]).
    pub fn config(&self) -> &AdvSgmConfig {
        match &self.inner {
            Inner::Sequential(t) => t.config(),
            Inner::Parallel(p) => &p.core.cfg,
        }
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion) and returns
    /// the outcome — the sharded counterpart of [`Trainer::run`].
    ///
    /// # Errors
    /// Propagates substrate failures; budget exhaustion is *not* an error
    /// (it sets [`TrainOutcome::stopped_by_budget`]).
    ///
    /// # Examples
    /// ```
    /// use advsgm_core::{AdvSgmConfig, ModelVariant, ShardedTrainer};
    /// use advsgm_graph::generators::classic::karate_club;
    ///
    /// let graph = karate_club();
    /// let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm).with_threads(2);
    /// let trainer = ShardedTrainer::new(&graph, cfg).unwrap();
    /// assert_eq!(trainer.threads(), 2);
    /// let out = trainer.train(&graph).unwrap();
    /// assert_eq!(out.node_vectors.rows(), graph.num_nodes());
    /// assert!(out.disc_updates > 0);
    /// ```
    pub fn train(self, graph: &Graph) -> Result<TrainOutcome, CoreError> {
        self.train_with_hooks(graph, &mut NoHooks)
    }

    /// [`ShardedTrainer::train`] with a [`TrainHooks`] observer (epoch
    /// events, graceful stop, checkpoint capture).
    ///
    /// # Errors
    /// See [`ShardedTrainer::train`].
    pub fn train_with_hooks(
        self,
        graph: &Graph,
        hooks: &mut dyn TrainHooks,
    ) -> Result<TrainOutcome, CoreError> {
        match self.inner {
            Inner::Sequential(t) => t.run_with_hooks(graph, hooks),
            Inner::Parallel(p) => p.train_with_hooks(graph, hooks),
        }
    }

    /// Convenience: build + train in one call.
    ///
    /// # Errors
    /// See [`ShardedTrainer::new`] / [`ShardedTrainer::train`].
    pub fn fit(graph: &Graph, cfg: AdvSgmConfig) -> Result<TrainOutcome, CoreError> {
        ShardedTrainer::new(graph, cfg)?.train(graph)
    }
}

/// The `threads > 1` session: a [`SessionCore`] plus everything needed to
/// stand up the producer thread and the sharded engine at train time.
struct ParallelSession {
    core: SessionCore,
    provider: Option<BatchProvider>,
    threads: usize,
    /// `[producer, epoch-loss]` RNG states when resuming; `None` for a
    /// fresh run (streams derive from the seed).
    resume_streams: Option<[[u64; 4]; 2]>,
}

impl ParallelSession {
    fn new(graph: &Graph, cfg: AdvSgmConfig, threads: usize) -> Result<Self, CoreError> {
        // The init-stream RNG is dropped: the parallel engine derives its
        // own streams, sharing only the parameter initialisation.
        let (core, provider, _init_rng) = SessionCore::new(graph, cfg)?;
        Ok(Self {
            core,
            provider: Some(provider),
            threads,
            resume_streams: None,
        })
    }

    fn resume(graph: &Graph, state: &CheckpointState, threads: usize) -> Result<Self, CoreError> {
        let (core, provider) = SessionCore::resume(graph, state)?;
        Ok(Self {
            core,
            provider: Some(provider),
            threads,
            resume_streams: Some([state.rng_streams[0], state.rng_streams[1]]),
        })
    }

    fn train_with_hooks(
        mut self,
        graph: &Graph,
        hooks: &mut dyn TrainHooks,
    ) -> Result<TrainOutcome, CoreError> {
        let mut pool = ThreadPool::new(self.threads);
        let provider = self.provider.take().expect("provider present until train");
        let seed = self.core.cfg.seed;
        let epochs = self.core.cfg.epochs;
        let disc_iters = self.core.cfg.disc_iters;
        let start_epoch = self.core.cursor.epochs_done;
        let (producer_rng, loss_rng) = match self.resume_streams {
            Some([producer, loss]) => (rng_from_state(producer), rng_from_state(loss)),
            None => (
                seeded(derive_seed(seed, STREAM_SAMPLER)),
                seeded(derive_seed(seed, STREAM_LOSS)),
            ),
        };
        // The engine's checkpoint baseline: the producer's start state is
        // by definition its state at the `start_epoch` boundary.
        let initial = ProducerSnapshot {
            rng: rng_state(&producer_rng),
            edge_permutation: provider.edge_permutation().to_vec(),
        };

        let core = &mut self.core;
        let threads = self.threads;
        let plan = ProducePlan {
            start_epoch,
            epochs,
            disc_iters,
            // Snapshot upkeep is skipped entirely for runs that can never
            // checkpoint (it copies the edge permutation once per epoch).
            snapshots: hooks.may_checkpoint(),
        };
        std::thread::scope(|scope| {
            let (tx, rx) = sync_channel(QUEUE_DEPTH);
            // Producer: runs Algorithm 2 ahead of the training loop.
            scope.spawn(move || {
                produce_batches(provider, graph, producer_rng, &plan, &tx);
            });
            let mut engine = ShardedEngine::new(&mut pool, rx, threads, seed, loss_rng, initial);
            run_schedule(core, &mut engine, graph, hooks)
        })?;
        self.core.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::ModelVariant;
    use advsgm_graph::generators::classic::karate_club;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
    use advsgm_linalg::rng::seeded;
    use advsgm_linalg::vector;
    use rand::Rng;

    fn small_graph() -> Graph {
        let mut rng = seeded(99);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_edges: 600,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    fn bits(m: &advsgm_linalg::DenseMatrix) -> Vec<u64> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn one_thread_is_bitwise_identical_to_sequential() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let cfg = AdvSgmConfig::test_small(v).with_threads(1);
            let seq = Trainer::fit(&g, cfg.clone()).unwrap();
            let sh = ShardedTrainer::fit(&g, cfg).unwrap();
            assert_eq!(
                bits(&seq.node_vectors),
                bits(&sh.node_vectors),
                "{v}: threads=1 must reproduce the sequential trainer bit-for-bit"
            );
            assert_eq!(seq.disc_updates, sh.disc_updates);
            assert_eq!(seq.epoch_losses, sh.epoch_losses);
        }
    }

    #[test]
    fn parallel_training_is_run_to_run_deterministic() {
        let g = small_graph();
        for v in [ModelVariant::AdvSgm, ModelVariant::Sgm] {
            let cfg = AdvSgmConfig::test_small(v).with_threads(4);
            let a = ShardedTrainer::fit(&g, cfg.clone()).unwrap();
            let b = ShardedTrainer::fit(&g, cfg).unwrap();
            assert_eq!(
                bits(&a.node_vectors),
                bits(&b.node_vectors),
                "{v}: threads=4 must be run-to-run deterministic"
            );
            assert_eq!(a.epoch_losses, b.epoch_losses);
        }
    }

    #[test]
    fn shard_size_changes_trajectory_but_stays_deterministic() {
        let g = small_graph();
        let base = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(3);
        let a1 = ShardedTrainer::fit(&g, base.clone().with_shard_size(4)).unwrap();
        let a2 = ShardedTrainer::fit(&g, base.clone().with_shard_size(4)).unwrap();
        assert_eq!(bits(&a1.node_vectors), bits(&a2.node_vectors));
        let b = ShardedTrainer::fit(&g, base.with_shard_size(5)).unwrap();
        assert_ne!(
            bits(&a1.node_vectors),
            bits(&b.node_vectors),
            "different sharding must follow a different derived-stream trajectory"
        );
    }

    #[test]
    fn accounting_is_engine_invariant() {
        // Budget spend and schedule-derived counters must not depend on
        // the execution engine or thread count.
        let g = karate_club();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epochs = 50;
        cfg.disc_iters = 10;
        cfg.sigma = 1.0;
        cfg.epsilon = 0.8; // stops early
        let seq = Trainer::fit(&g, cfg.clone()).unwrap();
        for threads in [2usize, 4] {
            let sh = ShardedTrainer::fit(&g, cfg.clone().with_threads(threads)).unwrap();
            assert_eq!(seq.disc_updates, sh.disc_updates, "threads={threads}");
            assert_eq!(seq.epochs_run, sh.epochs_run);
            assert_eq!(seq.stopped_by_budget, sh.stopped_by_budget);
            assert!(sh.stopped_by_budget, "this config must exhaust the budget");
            assert_eq!(seq.epsilon_spent, sh.epsilon_spent);
            assert_eq!(seq.delta_spent, sh.delta_spent);
        }
    }

    #[test]
    fn parallel_sgm_learns_link_structure() {
        // The parallel path must actually train, not just not crash:
        // positive pairs score above random pairs after a few epochs.
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::Sgm).with_threads(4);
        cfg.epochs = 12;
        cfg.disc_iters = 20;
        cfg.batch_size = 64;
        let out = ShardedTrainer::fit(&g, cfg).unwrap();
        let emb = &out.node_vectors;
        let ctx = &out.context_vectors;
        let mut rng = seeded(5);
        let mut pos_mean = 0.0;
        for e in g.edges() {
            pos_mean += vector::dot(emb.row(e.u().index()), ctx.row(e.v().index()));
        }
        pos_mean /= g.num_edges() as f64;
        let mut neg_mean = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let a = rng.gen_range(0..g.num_nodes());
            let b = rng.gen_range(0..g.num_nodes());
            neg_mean += vector::dot(emb.row(a), ctx.row(b));
        }
        neg_mean /= trials as f64;
        assert!(
            pos_mean > neg_mean,
            "positive mean {pos_mean} not above random mean {neg_mean}"
        );
    }

    #[test]
    fn every_variant_trains_in_parallel_without_error() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let cfg = AdvSgmConfig::test_small(v)
                .with_threads(4)
                .with_shard_size(7);
            let out = ShardedTrainer::fit(&g, cfg).unwrap();
            assert_eq!(out.node_vectors.rows(), g.num_nodes());
            assert!(out.disc_updates > 0, "{v}: no updates");
            assert!(
                out.node_vectors.as_slice().iter().all(|x| x.is_finite()),
                "{v}: non-finite embedding"
            );
        }
    }

    #[test]
    fn auto_thread_resolution_trains_and_is_deterministic() {
        // num_threads = 0 resolves via ADVSGM_THREADS (CI runs this suite
        // with it set to 4, routing the full pipeline through the parallel
        // path) and falls back to the sequential engine otherwise; either
        // way training must succeed and be reproducible.
        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        assert_eq!(cfg.num_threads, 0, "test_small must leave threads auto");
        let trainer = ShardedTrainer::new(&g, cfg.clone()).unwrap();
        assert_eq!(trainer.threads(), cfg.effective_threads());
        let a = trainer.train(&g).unwrap();
        let b = ShardedTrainer::fit(&g, cfg).unwrap();
        assert_eq!(bits(&a.node_vectors), bits(&b.node_vectors));
    }

    #[test]
    fn rows_stay_in_unit_ball_when_projecting() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(4);
        cfg.project_rows = true;
        let out = ShardedTrainer::fit(&g, cfg).unwrap();
        for i in 0..out.node_vectors.rows() {
            assert!(vector::norm2(out.node_vectors.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(5, vec![], None);
        let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm).with_threads(4);
        assert!(ShardedTrainer::new(&g, cfg).is_err());
    }
}
