//! The sequential training facade over the session layer.
//!
//! [`Trainer`] is a session core driven by the sequential engine
//! (`session::sequential::SequentialEngine`): the Algorithm-3 schedule
//! itself — epochs, `n_D`/`n_G` iteration counts, the Theorem-7 stopping
//! rule, outcome assembly — lives once in `session::run_schedule` and is
//! shared verbatim with the sharded engine, so the two paths cannot
//! drift (DESIGN.md §10).

use advsgm_graph::Graph;
use advsgm_linalg::rng::rng_from_state;
use advsgm_linalg::DenseMatrix;

use crate::config::AdvSgmConfig;
use crate::error::CoreError;
use crate::loss::novel_loss_batch;
use crate::session::sequential::SequentialEngine;
use crate::session::{
    gradient_noise_std, run_schedule, CheckpointState, EngineKind, NoHooks, SessionCore, TrainHooks,
};
use crate::sigmoid::SigmoidKind;
use crate::variants::ModelVariant;
use crate::weighting::WeightMode;

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The released node vectors (`W_in`) — the embeddings used downstream.
    pub node_vectors: DenseMatrix,
    /// The context vectors (`W_out`), kept for completeness.
    pub context_vectors: DenseMatrix,
    /// Which variant produced this.
    pub variant: ModelVariant,
    /// Epochs fully completed.
    pub epochs_run: usize,
    /// Total discriminator updates applied (positive + negative batches).
    pub disc_updates: u64,
    /// Whether the privacy stopping rule ended training early.
    pub stopped_by_budget: bool,
    /// `epsilon` actually spent at the configured `delta` (private only).
    pub epsilon_spent: Option<f64>,
    /// `delta_hat` at the configured target `epsilon` (private only).
    pub delta_spent: Option<f64>,
    /// Per-epoch `|L_Nov|` diagnostics (Fig. 2's metric).
    pub epoch_losses: Vec<f64>,
}

/// Trains one model variant on one graph (Algorithm 3), single-threaded.
pub struct Trainer {
    core: SessionCore,
    engine: SequentialEngine,
}

impl Trainer {
    /// Builds a trainer; validates the configuration against the graph.
    ///
    /// # Errors
    /// Configuration or sampler-construction failures.
    pub fn new(graph: &Graph, cfg: AdvSgmConfig) -> Result<Self, CoreError> {
        let (core, provider, rng) = SessionCore::new(graph, cfg)?;
        Ok(Self {
            core,
            engine: SequentialEngine::new(provider, rng),
        })
    }

    /// Rebuilds a trainer mid-schedule from a sequential checkpoint
    /// captured through [`TrainHooks::on_checkpoint`]. Running the result
    /// is bitwise-identical to never having interrupted the original run.
    ///
    /// # Errors
    /// [`CoreError::Checkpoint`] when the state is inconsistent, was
    /// captured by another engine, or does not match `graph`.
    pub fn resume(graph: &Graph, state: &CheckpointState) -> Result<Self, CoreError> {
        if state.engine != EngineKind::Sequential {
            return Err(CoreError::Checkpoint {
                reason: format!(
                    "checkpoint was captured by the {:?} engine; resume it through \
                     ShardedTrainer::resume or PartitionedTrainer::resume",
                    state.engine
                ),
            });
        }
        let (core, provider) = SessionCore::resume(graph, state)?;
        let rng = rng_from_state(state.rng_streams[0]);
        Ok(Self {
            core,
            engine: SequentialEngine::new(provider, rng),
        })
    }

    /// The sigmoid used by this trainer (plain or constrained).
    pub fn sigmoid(&self) -> SigmoidKind {
        self.core.kind
    }

    /// The validated configuration this trainer was built with. Exporters
    /// (e.g. `advsgm-store`) read the privacy parameters (`sigma`, target
    /// `epsilon`/`delta`) here to stamp released artifacts.
    pub fn config(&self) -> &AdvSgmConfig {
        &self.core.cfg
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion) and returns
    /// the outcome.
    ///
    /// # Errors
    /// Propagates substrate failures; budget exhaustion is *not* an error
    /// (it sets [`TrainOutcome::stopped_by_budget`]).
    pub fn run(self, graph: &Graph) -> Result<TrainOutcome, CoreError> {
        self.run_with_hooks(graph, &mut NoHooks)
    }

    /// [`Trainer::run`] with a [`TrainHooks`] observer: epoch-boundary
    /// events (index, loss, privacy spend, stop reason), graceful stop,
    /// and checkpoint capture.
    ///
    /// # Errors
    /// See [`Trainer::run`].
    pub fn run_with_hooks(
        mut self,
        graph: &Graph,
        hooks: &mut dyn TrainHooks,
    ) -> Result<TrainOutcome, CoreError> {
        self.train_with_hooks(graph, hooks)?;
        self.core.into_outcome()
    }

    /// Runs the remaining schedule *without consuming* the trainer, so the
    /// trained state stays queryable afterwards — the Fig. 2 harness
    /// trains this way and then evaluates
    /// [`Trainer::loss_under_weight_mode`] on the result. A second call is
    /// a no-op once every epoch has run.
    ///
    /// # Errors
    /// Propagates substrate failures.
    pub fn train_with_hooks(
        &mut self,
        graph: &Graph,
        hooks: &mut dyn TrainHooks,
    ) -> Result<(), CoreError> {
        run_schedule(&mut self.core, &mut self.engine, graph, hooks)
    }

    /// Evaluates `|L_Nov|` under an arbitrary weight mode (Fig. 2 harness).
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn loss_under_weight_mode(
        &mut self,
        graph: &Graph,
        mode: WeightMode,
        batches: usize,
    ) -> Result<f64, CoreError> {
        let noise_std = gradient_noise_std(&self.core.cfg);
        let mut total = 0.0;
        for _ in 0..batches.max(1) {
            let (pos, signs) = self
                .engine
                .provider
                .positives_with_signs(graph, &mut self.engine.rng)?;
            let negs = self.engine.provider.negatives(&pos, &mut self.engine.rng);
            total += novel_loss_batch(
                self.core.kind,
                mode,
                &self.core.emb,
                &self.core.gens,
                &pos,
                &signs,
                &negs,
                noise_std,
                &mut self.engine.rng,
            )
            .abs();
        }
        Ok(total / batches.max(1) as f64)
    }

    /// Convenience: build + run in one call.
    ///
    /// # Errors
    /// See [`Trainer::new`] / [`Trainer::run`].
    pub fn fit(graph: &Graph, cfg: AdvSgmConfig) -> Result<TrainOutcome, CoreError> {
        Trainer::new(graph, cfg)?.run(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{EpochEvent, SessionControl, StopReason};
    use advsgm_graph::generators::classic::karate_club;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
    use advsgm_linalg::rng::seeded;
    use advsgm_linalg::vector;
    use rand::Rng;

    fn small_graph() -> Graph {
        let mut rng = seeded(99);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_edges: 600,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn every_variant_trains_without_error() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let out = Trainer::fit(&g, AdvSgmConfig::test_small(v)).unwrap();
            assert_eq!(out.node_vectors.rows(), g.num_nodes());
            assert_eq!(out.node_vectors.cols(), 16);
            assert!(out.disc_updates > 0, "{v}: no updates");
            assert!(
                out.node_vectors.as_slice().iter().all(|x| x.is_finite()),
                "{v}: non-finite embedding"
            );
        }
    }

    #[test]
    fn private_variants_report_privacy_spend() {
        let g = small_graph();
        let out = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        assert!(out.epsilon_spent.is_some());
        assert!(out.delta_spent.is_some());
        assert!(out.epsilon_spent.unwrap() > 0.0);
    }

    #[test]
    fn non_private_variants_do_not_account() {
        let g = small_graph();
        let out = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::Sgm)).unwrap();
        assert!(out.epsilon_spent.is_none());
        assert!(!out.stopped_by_budget);
        assert_eq!(out.epochs_run, 2);
    }

    #[test]
    fn tight_budget_stops_training_early() {
        let g = karate_club();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epochs = 50;
        cfg.disc_iters = 10;
        cfg.sigma = 1.0; // heavy per-step cost
        cfg.epsilon = 0.8;
        let out = Trainer::fit(&g, cfg).unwrap();
        assert!(out.stopped_by_budget, "expected early stop");
        assert!(out.epochs_run < 50);
        // Spent delta must have crossed the target.
        assert!(out.delta_spent.unwrap() >= 1e-5);
    }

    #[test]
    fn generous_budget_completes_all_epochs() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epsilon = 1e6; // effectively unbounded
        let (epochs, iters) = (cfg.epochs, cfg.disc_iters);
        let out = Trainer::fit(&g, cfg).unwrap();
        assert!(!out.stopped_by_budget);
        assert_eq!(out.epochs_run, epochs);
        assert_eq!(out.disc_updates, (epochs * iters * 2) as u64);
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let g = small_graph();
        let out1 = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        let out2 = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        assert_eq!(out1.node_vectors, out2.node_vectors);
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.seed = 1;
        let out3 = Trainer::fit(&g, cfg).unwrap();
        assert_ne!(out1.node_vectors, out3.node_vectors);
    }

    #[test]
    fn sgm_training_improves_link_reconstruction() {
        // After non-private skip-gram training, positive pairs should score
        // higher on average than random pairs.
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
        cfg.epochs = 12;
        cfg.disc_iters = 20;
        cfg.batch_size = 64;
        let out = Trainer::fit(&g, cfg).unwrap();
        let emb = &out.node_vectors;
        let ctx = &out.context_vectors;
        let mut rng = seeded(5);
        let mut pos_mean = 0.0;
        for e in g.edges() {
            pos_mean += vector::dot(emb.row(e.u().index()), ctx.row(e.v().index()));
        }
        pos_mean /= g.num_edges() as f64;
        let mut neg_mean = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let a = rng.gen_range(0..g.num_nodes());
            let b = rng.gen_range(0..g.num_nodes());
            neg_mean += vector::dot(emb.row(a), ctx.row(b));
        }
        neg_mean /= trials as f64;
        assert!(
            pos_mean > neg_mean,
            "positive mean {pos_mean} not above random mean {neg_mean}"
        );
    }

    #[test]
    fn rows_stay_in_unit_ball_when_projecting() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.project_rows = true;
        let out = Trainer::fit(&g, cfg).unwrap();
        for i in 0..out.node_vectors.rows() {
            assert!(vector::norm2(out.node_vectors.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn loss_under_weight_modes_orders_as_figure2() {
        // lambda = 1/S should produce the largest |L_Nov|, then 1, then 0.5
        // (Fig. 2's bars), because lambda multiplies a non-negative term.
        let g = small_graph();
        let mut t = Trainer::new(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        let l_half = t
            .loss_under_weight_mode(&g, WeightMode::Fixed(0.5), 3)
            .unwrap();
        let l_one = t
            .loss_under_weight_mode(&g, WeightMode::Fixed(1.0), 3)
            .unwrap();
        let l_inv = t
            .loss_under_weight_mode(&g, WeightMode::InverseS, 3)
            .unwrap();
        assert!(l_half <= l_one + 1e-9, "half={l_half} one={l_one}");
        assert!(l_one <= l_inv + 1e-9, "one={l_one} inv={l_inv}");
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(5, vec![], None);
        assert!(Trainer::new(&g, AdvSgmConfig::test_small(ModelVariant::Sgm)).is_err());
    }

    /// Records every epoch event; optionally stops after `stop_after`.
    struct Recorder {
        events: Vec<EpochEvent>,
        stop_after: Option<usize>,
    }

    impl TrainHooks for Recorder {
        fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
            self.events.push(event.clone());
            match self.stop_after {
                Some(k) if self.events.len() >= k => SessionControl::Stop,
                _ => SessionControl::Continue,
            }
        }
    }

    #[test]
    fn hooks_observe_every_epoch_with_spend() {
        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        let epochs = cfg.epochs;
        let mut rec = Recorder {
            events: Vec::new(),
            stop_after: None,
        };
        let out = Trainer::new(&g, cfg)
            .unwrap()
            .run_with_hooks(&g, &mut rec)
            .unwrap();
        assert_eq!(rec.events.len(), epochs);
        for (i, e) in rec.events.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!(e.epochs_total, epochs);
            assert_eq!(e.loss, Some(out.epoch_losses[i]));
            let spend = e.spend.expect("private variant reports spend");
            assert!(spend.epsilon_spent > 0.0);
        }
        assert_eq!(rec.events.last().unwrap().stop, Some(StopReason::Completed));
        assert!(rec.events[..epochs - 1].iter().all(|e| e.stop.is_none()));
    }

    #[test]
    fn hooks_see_budget_stop_event() {
        let g = karate_club();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epochs = 50;
        cfg.disc_iters = 10;
        cfg.sigma = 1.0;
        cfg.epsilon = 0.8;
        let mut rec = Recorder {
            events: Vec::new(),
            stop_after: None,
        };
        let out = Trainer::new(&g, cfg)
            .unwrap()
            .run_with_hooks(&g, &mut rec)
            .unwrap();
        assert!(out.stopped_by_budget);
        let last = rec.events.last().unwrap();
        assert_eq!(last.stop, Some(StopReason::BudgetExhausted));
        assert_eq!(last.loss, None, "mid-epoch stop has no epoch loss");
    }

    #[test]
    fn hook_stop_ends_training_gracefully() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epochs = 5;
        let mut rec = Recorder {
            events: Vec::new(),
            stop_after: Some(2),
        };
        let out = Trainer::new(&g, cfg)
            .unwrap()
            .run_with_hooks(&g, &mut rec)
            .unwrap();
        assert_eq!(out.epochs_run, 2);
        assert!(!out.stopped_by_budget);
        assert_eq!(out.epoch_losses.len(), 2);
    }
}
