//! Algorithm 3: the AdvSGM training loop.
//!
//! Per epoch: `n_D` discriminator iterations, each consuming one positive
//! batch `EB` and one negative batch `EBk` as **separate** updates (the
//! paper separates them so the two amplification probabilities `B/|E|` and
//! `Bk/|V|` compose cleanly — Theorem 7), followed by `n_G` generator
//! iterations. Private variants record every update with the RDP accountant
//! and stop as soon as `delta_hat >= delta` at the target `epsilon`
//! (lines 9–11).
//!
//! The discriminator update implements Theorem 6 literally: per pair the
//! released direction is `clip(dL_sgm/dv + v') ` and a per-batch noise
//! vector `N(0, (C sigma)^2 I)` rides along each summand, so a row touched
//! `c` times receives `c * n` — summing to the paper's `N(B^2 C^2 sigma^2 I)`
//! over the batch (Eqs. 22–23).

use std::collections::HashMap;

use advsgm_graph::Graph;
use advsgm_linalg::rng::{derive_seed, gaussian_vec, seeded};
use advsgm_linalg::vector;
use advsgm_linalg::DenseMatrix;
use advsgm_privacy::{PrivacyError, RdpAccountant};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::config::AdvSgmConfig;
use crate::error::CoreError;
use crate::grad::{advsgm_augment, dpasgm_augment, sgm_negative_grads, sgm_positive_grads};
use crate::loss::novel_loss_batch;
use crate::model::{Embeddings, GeneratorPair};
use crate::sampler::{BatchProvider, DiscBatch};
use crate::sigmoid::SigmoidKind;
use crate::variants::ModelVariant;
use crate::weighting::WeightMode;

/// The fixed adversarial weight DP-ASGM uses (`lambda` in Eq. 4; the paper
/// notes `lambda in (0, 1]` is the common choice).
pub(crate) const DPASGM_LAMBDA: f64 = 1.0;

/// Per-coordinate std of the noise entering the applied gradients.
///
/// DP-SGM / DP-ASGM: strict DPSGD calibration `C*sigma` (Abadi et al.;
/// Eqs. 5–6) — at `sigma = 5` this is destructive, which is exactly the
/// behaviour the paper's Table V shows for those baselines.
/// AdvSGM: the activation-argument reading, `C*sigma/r` per coordinate
/// (noise-vector norm ~ `C*sigma/sqrt(r)`), unless `faithful_noise`
/// requests the strict calibration (the ablation setting).
///
/// Shared by the sequential [`Trainer`] and the sharded engine so the two
/// paths can never drift apart on calibration.
pub(crate) fn gradient_noise_std(cfg: &AdvSgmConfig) -> f64 {
    let base = cfg.clip * cfg.sigma;
    match cfg.variant {
        ModelVariant::DpSgm | ModelVariant::DpAsgm => base,
        ModelVariant::AdvSgm => {
            if cfg.faithful_noise {
                base
            } else {
                base / cfg.dim as f64
            }
        }
        ModelVariant::Sgm | ModelVariant::AdvSgmNoDp => 0.0,
    }
}

/// Records one mechanism invocation against the accountant (when present)
/// and evaluates Algorithm 3's stopping rule. Returns `true` when training
/// must stop. Shared by both training engines.
pub(crate) fn record_and_check(
    accountant: &mut Option<RdpAccountant>,
    cfg: &AdvSgmConfig,
    gamma: f64,
) -> Result<bool, CoreError> {
    let Some(acc) = accountant.as_mut() else {
        return Ok(false);
    };
    acc.record_subsampled_gaussian(cfg.sigma, gamma, 1)?;
    match acc.check_budget(cfg.epsilon, cfg.delta) {
        Ok(()) => Ok(false),
        Err(PrivacyError::BudgetExhausted { .. }) => Ok(true),
        Err(e) => Err(e.into()),
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The released node vectors (`W_in`) — the embeddings used downstream.
    pub node_vectors: DenseMatrix,
    /// The context vectors (`W_out`), kept for completeness.
    pub context_vectors: DenseMatrix,
    /// Which variant produced this.
    pub variant: ModelVariant,
    /// Epochs fully completed.
    pub epochs_run: usize,
    /// Total discriminator updates applied (positive + negative batches).
    pub disc_updates: u64,
    /// Whether the privacy stopping rule ended training early.
    pub stopped_by_budget: bool,
    /// `epsilon` actually spent at the configured `delta` (private only).
    pub epsilon_spent: Option<f64>,
    /// `delta_hat` at the configured target `epsilon` (private only).
    pub delta_spent: Option<f64>,
    /// Per-epoch `|L_Nov|` diagnostics (Fig. 2's metric).
    pub epoch_losses: Vec<f64>,
}

/// Trains one model variant on one graph (Algorithm 3).
pub struct Trainer {
    cfg: AdvSgmConfig,
    kind: SigmoidKind,
    emb: Embeddings,
    gens: GeneratorPair,
    provider: BatchProvider,
    accountant: Option<RdpAccountant>,
    rng: SmallRng,
}

impl Trainer {
    /// Builds a trainer; validates the configuration against the graph.
    ///
    /// # Errors
    /// Configuration or sampler-construction failures.
    pub fn new(graph: &Graph, cfg: AdvSgmConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        if graph.num_edges() == 0 {
            return Err(CoreError::Config {
                field: "graph",
                reason: "cannot train on a graph with no edges".into(),
            });
        }
        let kind = if cfg.variant.uses_constrained_sigmoid() {
            SigmoidKind::constrained(cfg.sigmoid_a, cfg.sigmoid_b)
        } else {
            SigmoidKind::Plain
        };
        let mut rng = seeded(derive_seed(cfg.seed, 0xAD5));
        let emb = Embeddings::init(graph.num_nodes(), cfg.dim, &mut rng);
        let gens = GeneratorPair::new(graph.num_nodes(), cfg.dim, &mut rng);
        let provider = BatchProvider::new(
            graph,
            cfg.batch_size,
            cfg.negatives,
            cfg.negative_distribution,
        )?;
        let accountant = cfg.variant.is_private().then(RdpAccountant::new);
        Ok(Self {
            cfg,
            kind,
            emb,
            gens,
            provider,
            accountant,
            rng,
        })
    }

    /// The sigmoid used by this trainer (plain or constrained).
    pub fn sigmoid(&self) -> SigmoidKind {
        self.kind
    }

    /// The validated configuration this trainer was built with. Exporters
    /// (e.g. `advsgm-store`) read the privacy parameters (`sigma`, target
    /// `epsilon`/`delta`) here to stamp released artifacts.
    pub fn config(&self) -> &AdvSgmConfig {
        &self.cfg
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion) and returns
    /// the outcome.
    ///
    /// # Errors
    /// Propagates substrate failures; budget exhaustion is *not* an error
    /// (it sets [`TrainOutcome::stopped_by_budget`]).
    pub fn run(mut self, graph: &Graph) -> Result<TrainOutcome, CoreError> {
        let epochs = self.cfg.epochs;
        let (stopped, epochs_run, disc_updates, epoch_losses) =
            self.train_in_place(graph, epochs)?;
        let (epsilon_spent, delta_spent) = match &self.accountant {
            None => (None, None),
            Some(acc) => {
                let snap = acc.snapshot(self.cfg.epsilon, self.cfg.delta)?;
                (Some(snap.epsilon_spent), Some(snap.delta_spent))
            }
        };
        Ok(TrainOutcome {
            context_vectors: self.emb.w_out().clone(),
            node_vectors: self.emb.into_node_vectors(),
            variant: self.cfg.variant,
            epochs_run,
            disc_updates,
            stopped_by_budget: stopped,
            epsilon_spent,
            delta_spent,
            epoch_losses,
        })
    }

    /// Runs up to `epochs` epochs of Algorithm 3 without consuming the
    /// trainer, returning `(stopped_by_budget, epochs_run, disc_updates,
    /// epoch_losses)`. Used by the Fig. 2 harness, which needs to evaluate
    /// losses on the trained state afterwards.
    ///
    /// # Errors
    /// Propagates substrate failures.
    pub fn train_in_place(
        &mut self,
        graph: &Graph,
        epochs: usize,
    ) -> Result<(bool, usize, u64, Vec<f64>), CoreError> {
        let mut stopped = false;
        let mut epochs_run = 0usize;
        let mut disc_updates = 0u64;
        let mut epoch_losses = Vec::with_capacity(epochs);

        'training: for _epoch in 0..epochs {
            for _ in 0..self.cfg.disc_iters {
                // One Algorithm 2 iteration — positive batch EB with random
                // per-edge orientation, then negative batch EBk from the
                // oriented start nodes — shared verbatim with the sharded
                // engine's producer so the two paths cannot drift.
                let (pos_batch, neg_batch) =
                    self.provider.sample_disc_iteration(graph, &mut self.rng)?;
                self.disc_update(&pos_batch);
                disc_updates += 1;
                if self.record_and_check(self.provider.gamma_pos())? {
                    stopped = true;
                    break 'training;
                }
                self.disc_update(&neg_batch);
                disc_updates += 1;
                if self.record_and_check(self.provider.gamma_neg())? {
                    stopped = true;
                    break 'training;
                }
            }
            if self.cfg.variant.is_adversarial() {
                for _ in 0..self.cfg.gen_iters {
                    self.generator_update(graph);
                }
            }
            epochs_run += 1;
            epoch_losses.push(self.epoch_loss(graph)?);
        }
        Ok((stopped, epochs_run, disc_updates, epoch_losses))
    }

    /// Records one mechanism invocation and evaluates the stopping rule.
    /// Returns `true` when training must stop.
    fn record_and_check(&mut self, gamma: f64) -> Result<bool, CoreError> {
        record_and_check(&mut self.accountant, &self.cfg, gamma)
    }

    /// Per-coordinate std of the noise entering the applied gradients
    /// (see the module-level [`gradient_noise_std`]).
    fn gradient_noise_std(&self) -> f64 {
        gradient_noise_std(&self.cfg)
    }

    /// One discriminator update (Algorithm 3 line 8) over a batch.
    fn disc_update(&mut self, batch: &DiscBatch) {
        let r = self.cfg.dim;
        let variant = self.cfg.variant;
        let clip = self.cfg.clip;
        let positive = batch.positive;
        // Per-batch shared noise vectors (Theorem 6's N_{D,1}, N_{D,2}).
        let noise_std = self.gradient_noise_std();
        let n_in = gaussian_vec(&mut self.rng, noise_std, r);
        let n_out = gaussian_vec(&mut self.rng, noise_std, r);

        // Accumulate (sum of clipped per-pair grads, touch count) per row.
        let mut acc_in: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let mut acc_out: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let count = batch.pairs.len();
        debug_assert!(count > 0, "empty batch");

        // For the adversarial variants, sample all fake neighbors up front
        // and (for AdvSGM) compute the batch-mean fakes: the augment uses
        // the *centered* fake `v' - mean(v')` as a control variate, so the
        // common component of the generator output (which would drift every
        // touched row identically and crush the skip-gram signal inside the
        // clip) cancels, while the per-node structure the generator learned
        // passes through. Centering subtracts a pair-independent constant,
        // so Theorem 6's sensitivity/noise argument is unchanged.
        let adversarial = variant.is_adversarial();
        let mut fakes_j: Vec<Vec<f64>> = Vec::new();
        let mut fakes_i: Vec<Vec<f64>> = Vec::new();
        let mut mean_j = vec![0.0; r];
        let mut mean_i = vec![0.0; r];
        if adversarial {
            for &(i, j) in &batch.pairs {
                let fj = self.gens.for_i.generate(j, &mut self.rng).v;
                let fi = self.gens.for_j.generate(i, &mut self.rng).v;
                vector::add_assign(&mut mean_j, &fj);
                vector::add_assign(&mut mean_i, &fi);
                fakes_j.push(fj);
                fakes_i.push(fi);
            }
            vector::scale(&mut mean_j, 1.0 / count as f64);
            vector::scale(&mut mean_i, 1.0 / count as f64);
        }

        for (idx, &(i, j)) in batch.pairs.iter().enumerate() {
            let vi = self.emb.input(i);
            let vj = self.emb.output(j);
            let grads = if positive {
                sgm_positive_grads(self.kind, vi, vj)
            } else {
                sgm_negative_grads(self.kind, vi, vj)
            };
            let mut gi = grads.first;
            let mut gj = grads.second;

            match variant {
                ModelVariant::AdvSgm | ModelVariant::AdvSgmNoDp => {
                    // Theorem 6: lambda = 1/S collapses the adversarial
                    // gradient to the bare (here: centered) fake neighbor.
                    let centered_j = vector::sub(&fakes_j[idx], &mean_j);
                    let centered_i = vector::sub(&fakes_i[idx], &mean_i);
                    advsgm_augment(&mut gi, &centered_j);
                    advsgm_augment(&mut gj, &centered_i);
                }
                ModelVariant::DpAsgm => {
                    // First-cut: the *real* adversarial gradient (Eq. 11),
                    // uncentered — the naive construction the paper shows
                    // performs poorly.
                    dpasgm_augment(self.kind, DPASGM_LAMBDA, vi, &fakes_j[idx], &mut gi);
                    dpasgm_augment(self.kind, DPASGM_LAMBDA, vj, &fakes_i[idx], &mut gj);
                }
                ModelVariant::Sgm | ModelVariant::DpSgm => {}
            }
            // DPSGD-style clipping for every variant except plain SGM.
            if variant != ModelVariant::Sgm {
                vector::clip_l2(&mut gi, clip);
                vector::clip_l2(&mut gj, clip);
            }
            match acc_in.get_mut(&i) {
                Some((sum, c)) => {
                    vector::add_assign(sum, &gi);
                    *c += 1;
                }
                None => {
                    acc_in.insert(i, (gi, 1));
                }
            }
            match acc_out.get_mut(&j) {
                Some((sum, c)) => {
                    vector::add_assign(sum, &gj);
                    *c += 1;
                }
                None => {
                    acc_out.insert(j, (gj, 1));
                }
            }
        }

        // Apply noisy updates. Eq. (22) writes the batch release as
        // `(sum_b clip_b + noise)/B`, but a skip-gram row receives only its
        // own `c << B` summands; dividing those by the full `B` makes the
        // per-row effective step `eta/B` and training stalls (each pair
        // then contributes ~1e-3 of a word2vec step). We therefore
        // normalise each row by its own touch count `c` — per-pair SGD
        // semantics, the convention of every skip-gram implementation —
        // which rescales signal and that row's noise share identically, so
        // the privacy analysis (noise calibrated to the clipped summands)
        // is untouched. DESIGN.md §5 records this reading.
        let eta = self.cfg.eta_d;
        let project = self.cfg.project_rows && variant != ModelVariant::Sgm;
        for (i, (mut g, c)) in acc_in {
            vector::fused_axpy_scale(&mut g, c as f64, &n_in, 1.0 / c as f64);
            self.emb.step_input(i, eta, &g, project);
        }
        for (j, (mut g, c)) in acc_out {
            vector::fused_axpy_scale(&mut g, c as f64, &n_out, 1.0 / c as f64);
            self.emb.step_output(j, eta, &g, project);
        }
    }

    /// One generator iteration (Algorithm 3 lines 14–18, Eq. 17).
    fn generator_update(&mut self, graph: &Graph) {
        let r = self.cfg.dim;
        let sample_count = self.cfg.batch_size * (self.cfg.negatives + 1);
        // Activation-input noise only exists in the full AdvSGM loss.
        let noise_std = self.gradient_noise_std();
        let ng1 = gaussian_vec(&mut self.rng, noise_std, r);
        let ng2 = gaussian_vec(&mut self.rng, noise_std, r);

        let mut grads_j: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let mut grads_i: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let edges = graph.edges();
        for _ in 0..sample_count {
            let e = edges[self.rng.gen_range(0..edges.len())];
            // Random orientation, matching the discriminator's convention.
            let (s, t) = if self.rng.gen::<bool>() {
                (e.u().index(), e.v().index())
            } else {
                (e.v().index(), e.u().index())
            };
            let vi = self.emb.input(s).to_vec();
            let vj = self.emb.output(t).to_vec();
            // Fake neighbor of the output-side node t, paired with real v_i.
            let f1 = self.gens.for_i.generate(t, &mut self.rng);
            let (s1_fake, s1_noise) = vector::dot2(&vi, &f1.v, &ng1);
            let s1 = s1_fake + s1_noise;
            // d/ds [ln(1 - S(s))] = -S'/(1-S).
            let c1 = -self.kind.neg_log_one_minus_grad(s1);
            let up1 = vector::scaled(c1, &vi);
            self.gens.for_i.accumulate_grad(&f1, &up1, &mut grads_j);
            // Fake neighbor of the input-side node s, paired with real v_j.
            let f2 = self.gens.for_j.generate(s, &mut self.rng);
            let (s2_fake, s2_noise) = vector::dot2(&vj, &f2.v, &ng2);
            let s2 = s2_fake + s2_noise;
            let c2 = -self.kind.neg_log_one_minus_grad(s2);
            let up2 = vector::scaled(c2, &vj);
            self.gens.for_j.accumulate_grad(&f2, &up2, &mut grads_i);
        }
        self.gens.for_i.step(self.cfg.eta_g, &grads_j);
        self.gens.for_j.step(self.cfg.eta_g, &grads_i);
    }

    /// Per-epoch `|L_Nov|` diagnostic on one fresh batch.
    fn epoch_loss(&mut self, graph: &Graph) -> Result<f64, CoreError> {
        let pos = self.provider.positives(graph, &mut self.rng)?;
        let negs = self.provider.negatives(&pos, &mut self.rng);
        let noise_std = self.gradient_noise_std();
        let mode = if self.cfg.variant.is_adversarial() {
            WeightMode::InverseS
        } else {
            WeightMode::Fixed(0.0)
        };
        Ok(novel_loss_batch(
            self.kind,
            mode,
            &self.emb,
            &self.gens,
            &pos,
            &negs,
            noise_std,
            &mut self.rng,
        )
        .abs())
    }

    /// Evaluates `|L_Nov|` under an arbitrary weight mode (Fig. 2 harness).
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn loss_under_weight_mode(
        &mut self,
        graph: &Graph,
        mode: WeightMode,
        batches: usize,
    ) -> Result<f64, CoreError> {
        let noise_std = self.gradient_noise_std();
        let mut total = 0.0;
        for _ in 0..batches.max(1) {
            let pos = self.provider.positives(graph, &mut self.rng)?;
            let negs = self.provider.negatives(&pos, &mut self.rng);
            total += novel_loss_batch(
                self.kind,
                mode,
                &self.emb,
                &self.gens,
                &pos,
                &negs,
                noise_std,
                &mut self.rng,
            )
            .abs();
        }
        Ok(total / batches.max(1) as f64)
    }

    /// Convenience: build + run in one call.
    ///
    /// # Errors
    /// See [`Trainer::new`] / [`Trainer::run`].
    pub fn fit(graph: &Graph, cfg: AdvSgmConfig) -> Result<TrainOutcome, CoreError> {
        Trainer::new(graph, cfg)?.run(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};

    fn small_graph() -> Graph {
        let mut rng = seeded(99);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_edges: 600,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn every_variant_trains_without_error() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let out = Trainer::fit(&g, AdvSgmConfig::test_small(v)).unwrap();
            assert_eq!(out.node_vectors.rows(), g.num_nodes());
            assert_eq!(out.node_vectors.cols(), 16);
            assert!(out.disc_updates > 0, "{v}: no updates");
            assert!(
                out.node_vectors.as_slice().iter().all(|x| x.is_finite()),
                "{v}: non-finite embedding"
            );
        }
    }

    #[test]
    fn private_variants_report_privacy_spend() {
        let g = small_graph();
        let out = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        assert!(out.epsilon_spent.is_some());
        assert!(out.delta_spent.is_some());
        assert!(out.epsilon_spent.unwrap() > 0.0);
    }

    #[test]
    fn non_private_variants_do_not_account() {
        let g = small_graph();
        let out = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::Sgm)).unwrap();
        assert!(out.epsilon_spent.is_none());
        assert!(!out.stopped_by_budget);
        assert_eq!(out.epochs_run, 2);
    }

    #[test]
    fn tight_budget_stops_training_early() {
        let g = karate_club();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epochs = 50;
        cfg.disc_iters = 10;
        cfg.sigma = 1.0; // heavy per-step cost
        cfg.epsilon = 0.8;
        let out = Trainer::fit(&g, cfg).unwrap();
        assert!(out.stopped_by_budget, "expected early stop");
        assert!(out.epochs_run < 50);
        // Spent delta must have crossed the target.
        assert!(out.delta_spent.unwrap() >= 1e-5);
    }

    #[test]
    fn generous_budget_completes_all_epochs() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.epsilon = 1e6; // effectively unbounded
        let (epochs, iters) = (cfg.epochs, cfg.disc_iters);
        let out = Trainer::fit(&g, cfg).unwrap();
        assert!(!out.stopped_by_budget);
        assert_eq!(out.epochs_run, epochs);
        assert_eq!(out.disc_updates, (epochs * iters * 2) as u64);
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let g = small_graph();
        let out1 = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        let out2 = Trainer::fit(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        assert_eq!(out1.node_vectors, out2.node_vectors);
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.seed = 1;
        let out3 = Trainer::fit(&g, cfg).unwrap();
        assert_ne!(out1.node_vectors, out3.node_vectors);
    }

    #[test]
    fn sgm_training_improves_link_reconstruction() {
        // After non-private skip-gram training, positive pairs should score
        // higher on average than random pairs.
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
        cfg.epochs = 12;
        cfg.disc_iters = 20;
        cfg.batch_size = 64;
        let out = Trainer::fit(&g, cfg).unwrap();
        let emb = &out.node_vectors;
        let ctx = &out.context_vectors;
        let mut rng = seeded(5);
        let mut pos_mean = 0.0;
        for e in g.edges() {
            pos_mean += vector::dot(emb.row(e.u().index()), ctx.row(e.v().index()));
        }
        pos_mean /= g.num_edges() as f64;
        let mut neg_mean = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let a = rng.gen_range(0..g.num_nodes());
            let b = rng.gen_range(0..g.num_nodes());
            neg_mean += vector::dot(emb.row(a), ctx.row(b));
        }
        neg_mean /= trials as f64;
        assert!(
            pos_mean > neg_mean,
            "positive mean {pos_mean} not above random mean {neg_mean}"
        );
    }

    #[test]
    fn rows_stay_in_unit_ball_when_projecting() {
        let g = small_graph();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.project_rows = true;
        let out = Trainer::fit(&g, cfg).unwrap();
        for i in 0..out.node_vectors.rows() {
            assert!(vector::norm2(out.node_vectors.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn loss_under_weight_modes_orders_as_figure2() {
        // lambda = 1/S should produce the largest |L_Nov|, then 1, then 0.5
        // (Fig. 2's bars), because lambda multiplies a non-negative term.
        let g = small_graph();
        let mut t = Trainer::new(&g, AdvSgmConfig::test_small(ModelVariant::AdvSgm)).unwrap();
        let l_half = t
            .loss_under_weight_mode(&g, WeightMode::Fixed(0.5), 3)
            .unwrap();
        let l_one = t
            .loss_under_weight_mode(&g, WeightMode::Fixed(1.0), 3)
            .unwrap();
        let l_inv = t
            .loss_under_weight_mode(&g, WeightMode::InverseS, 3)
            .unwrap();
        assert!(l_half <= l_one + 1e-9, "half={l_half} one={l_one}");
        assert!(l_one <= l_inv + 1e-9, "one={l_one} inv={l_inv}");
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(5, vec![], None);
        assert!(Trainer::new(&g, AdvSgmConfig::test_small(ModelVariant::Sgm)).is_err());
    }
}
