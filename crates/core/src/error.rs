//! Error type for model training.

use std::fmt;

use advsgm_graph::GraphError;
use advsgm_privacy::PrivacyError;

/// Errors produced while configuring or training a model.
#[derive(Debug)]
pub enum CoreError {
    /// Invalid configuration.
    Config {
        /// Offending field.
        field: &'static str,
        /// Explanation.
        reason: String,
    },
    /// A graph-substrate failure (sampling, splitting, ...).
    Graph(GraphError),
    /// A privacy-substrate failure (not including budget exhaustion, which
    /// is a normal stopping condition handled by the trainer).
    Privacy(PrivacyError),
    /// A checkpoint could not be resumed: it is internally inconsistent or
    /// does not match the graph/configuration it is being resumed against.
    Checkpoint {
        /// What was wrong.
        reason: String,
    },
    /// An I/O failure in the out-of-core engine's partition spill store
    /// (the in-RAM engines never perform I/O and never produce this).
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config { field, reason } => {
                write!(f, "invalid configuration {field}: {reason}")
            }
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Privacy(e) => write!(f, "privacy error: {e}"),
            CoreError::Checkpoint { reason } => write!(f, "cannot resume checkpoint: {reason}"),
            CoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Privacy(e) => Some(e),
            CoreError::Io(e) => Some(e),
            CoreError::Config { .. } | CoreError::Checkpoint { .. } => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<PrivacyError> for CoreError {
    fn from(e: PrivacyError) -> Self {
        CoreError::Privacy(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        use std::error::Error;
        let e = CoreError::from(GraphError::EmptyGraph { op: "train" });
        assert!(e.to_string().contains("train"));
        assert!(e.source().is_some());
        let c = CoreError::Config {
            field: "batch",
            reason: "zero".into(),
        };
        assert!(c.source().is_none());
    }
}
