//! # advsgm-core
//!
//! AdvSGM — *Differentially Private Graph Learning via Adversarial Skip-gram
//! Model* (ICDE 2025) — implemented from scratch, together with every
//! skip-gram variant the paper evaluates against:
//!
//! | Variant | Paper section | DP | Adversarial |
//! |---|---|---|---|
//! | `Sgm` (LINE)        | Eq. (2), "SGM (No DP)"   | –   | –   |
//! | `DpSgm`             | "DP-SGM" (DPSGD)         | yes | –   |
//! | `DpAsgm`            | Section III-B first cut  | yes | yes |
//! | `AdvSgm`            | Section IV (contribution)| yes | yes |
//! | `AdvSgmNoDp`        | "AdvSGM (No DP)"         | –   | yes |
//!
//! The heart of the crate is the [`session`] layer, a literal
//! implementation of Algorithm 3: alternating discriminator/generator
//! optimisation, the optimizable noise terms of Eq. (13), the Theorem-6
//! gradient identity `grad = clip(dL_sgm/dv + v') + N(C^2 sigma^2 I)`,
//! per-batch privacy accounting through `advsgm-privacy`, and the
//! stopping rule of lines 9–11. The schedule exists exactly once
//! (`session::run_schedule`) and executes through one of three engine
//! strategies: [`trainer::Trainer`] fronts the sequential engine,
//! [`sharded::ShardedTrainer`] the producer/worker engine (Algorithm 2
//! batch production on a dedicated thread, per-pair clipped gradients in
//! thread-local shards, a deterministic shard-order reduction) —
//! bitwise-identical to the sequential trainer at `threads = 1` and
//! run-to-run deterministic at any thread count (DESIGN.md §7/§10) —
//! and [`partitioned::PartitionedTrainer`] the out-of-core engine
//! (embedding partitions swapped through a two-slot pool with a disk
//! spill store, bitwise-identical to the sequential trainer at every
//! partition and thread count; DESIGN.md §14). The
//! session layer also provides [`session::TrainHooks`] (epoch-boundary
//! observability) and [`session::CheckpointState`] (bitwise-exact
//! checkpoint/resume).
//!
//! Gradients are analytic (the model is two embedding matrices plus two
//! one-layer generators), so there is no autograd dependency; see [`grad`]
//! for the derivations cross-checked against finite differences in tests.
//!
//! Paper coverage: Section III (skip-gram + first-cut DP-ASGM), Section IV
//! (AdvSGM: Eqs. 13–24, Theorem 6), Algorithm 2 (sampling glue in
//! [`sampler`]), Algorithm 3 ([`trainer`], [`sharded`]), and the Fig. 2
//! weight-setting machinery ([`weighting`], [`loss`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod grad;
pub mod loss;
pub mod model;
pub mod partitioned;
pub mod sampler;
pub mod session;
pub mod sharded;
pub mod sigmoid;
pub mod trainer;
pub mod variants;
pub mod weighting;

pub use config::AdvSgmConfig;
pub use error::CoreError;
pub use partitioned::{PartitionedTrainer, SlotPoolStats};
pub use session::{
    CheckpointState, EngineKind, EpochEvent, NoHooks, SessionControl, SpendSnapshot, StopReason,
    TrainHooks,
};
pub use sharded::ShardedTrainer;
pub use sigmoid::SigmoidKind;
pub use trainer::{TrainOutcome, Trainer};
pub use variants::ModelVariant;
pub use weighting::{structure_preference_weight, PairWeighting, WeightMode};
