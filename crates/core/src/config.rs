//! Training configuration with the paper's defaults (Section VI-A).

use advsgm_graph::sampling::negative::NegativeDistribution;

use crate::error::CoreError;
use crate::variants::ModelVariant;

/// Full configuration for one training run.
///
/// Defaults reproduce the paper's experimental setup: `n_epoch = 50`,
/// `n_D = 15`, `n_G = 5`, `r = 128`, `k = 5`, `B = 128`,
/// `eta_d = eta_g = 0.1`, `C = 1`, `sigma = 5`, `delta = 1e-5`,
/// constrained-sigmoid bounds `a = 1e-5`, `b = 120`, and a privacy budget
/// `epsilon` varied in `{1..6}` (default 6).
#[derive(Debug, Clone, PartialEq)]
pub struct AdvSgmConfig {
    /// Which model to train.
    pub variant: ModelVariant,
    /// Embedding dimension `r`.
    pub dim: usize,
    /// Negative sampling number `k`.
    pub negatives: usize,
    /// Batch size `B`.
    pub batch_size: usize,
    /// Training epochs `n_epoch`.
    pub epochs: usize,
    /// Discriminator iterations per epoch `n_D`.
    pub disc_iters: usize,
    /// Generator iterations per epoch `n_G`.
    pub gen_iters: usize,
    /// Discriminator learning rate `eta_d`.
    pub eta_d: f64,
    /// Generator learning rate `eta_g`.
    pub eta_g: f64,
    /// Gradient clipping threshold `C`.
    pub clip: f64,
    /// Noise multiplier `sigma`.
    pub sigma: f64,
    /// Target privacy budget `epsilon` (ignored by non-private variants).
    pub epsilon: f64,
    /// Target failure probability `delta`.
    pub delta: f64,
    /// Constrained-sigmoid lower bound `a`.
    pub sigmoid_a: f64,
    /// Constrained-sigmoid upper bound `b` (Table IV sweeps this).
    pub sigmoid_b: f64,
    /// Negative sampling distribution (the paper's Algorithm 2 is uniform).
    pub negative_distribution: NegativeDistribution,
    /// Project embedding rows back onto the unit ball after each update
    /// (the paper's "normalize the parameters ... to ensure C = 1").
    pub project_rows: bool,
    /// Noise-calibration reading for AdvSGM's activation-noise terms.
    ///
    /// `false` (default): the utility noise entering AdvSGM's gradients has
    /// per-coordinate std `C*sigma/r` (vector norm ~ `C*sigma/sqrt(r)`) —
    /// the *activation-argument* reading of `N_{D}(C^2 sigma^2 I) . v`,
    /// under which the paper's Table V utility levels are achievable.
    /// `true`: strict per-coordinate std `C*sigma`, the textbook Gaussian-
    /// mechanism calibration; at the paper's `sigma = 5` this makes AdvSGM
    /// indistinguishable from DP-SGM (chance-level utility at every
    /// epsilon) — the ablation benches demonstrate this. DP-SGM/DP-ASGM
    /// always use the strict DPSGD calibration (Abadi et al., Eq. 5/6),
    /// which is what reproduces their flat ~0.505 rows in Table V.
    /// The privacy accountant follows Theorem 7 verbatim in both modes.
    pub faithful_noise: bool,
    /// Worker threads for the sharded training engine
    /// ([`crate::sharded::ShardedTrainer`]).
    ///
    /// `0` means *auto*: the `ADVSGM_THREADS` environment variable if set,
    /// otherwise 1. At 1 the sharded trainer is bitwise-identical to the
    /// sequential [`crate::trainer::Trainer`]; at `N > 1` results are
    /// run-to-run deterministic for a fixed `(seed, threads, shard_size)`
    /// triple but differ from the sequential trajectory (the parallel
    /// engine derives independent per-shard RNG streams). The sequential
    /// `Trainer` ignores this field entirely.
    pub num_threads: usize,
    /// Pairs per shard for the parallel engine; `0` means *auto* (divide
    /// each batch evenly over the worker threads). Smaller shards change
    /// the derived RNG stream assignment and hence the (still
    /// deterministic) trajectory; they never change batch composition or
    /// privacy accounting.
    pub shard_size: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for AdvSgmConfig {
    fn default() -> Self {
        Self {
            variant: ModelVariant::AdvSgm,
            dim: 128,
            negatives: 5,
            batch_size: 128,
            epochs: 50,
            disc_iters: 15,
            gen_iters: 5,
            eta_d: 0.1,
            eta_g: 0.1,
            clip: 1.0,
            sigma: 5.0,
            epsilon: 6.0,
            delta: 1e-5,
            sigmoid_a: 1e-5,
            sigmoid_b: 120.0,
            negative_distribution: NegativeDistribution::Uniform,
            project_rows: true,
            faithful_noise: false,
            num_threads: 0,
            shard_size: 0,
            seed: 0,
        }
    }
}

impl AdvSgmConfig {
    /// Paper defaults for a given variant.
    pub fn for_variant(variant: ModelVariant) -> Self {
        Self {
            variant,
            ..Self::default()
        }
    }

    /// A scaled-down configuration for unit/integration tests: small graph
    /// budgets, few epochs, tiny embeddings — fast but exercising every
    /// code path.
    pub fn test_small(variant: ModelVariant) -> Self {
        Self {
            variant,
            dim: 16,
            negatives: 2,
            batch_size: 16,
            epochs: 2,
            disc_iters: 3,
            gen_iters: 2,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count for the sharded engine (builder style).
    ///
    /// # Examples
    /// ```
    /// use advsgm_core::{AdvSgmConfig, ModelVariant};
    ///
    /// let cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm).with_threads(4);
    /// assert_eq!(cfg.num_threads, 4);
    /// assert_eq!(cfg.effective_threads(), 4);
    /// // 0 requests auto-resolution (ADVSGM_THREADS, else 1).
    /// let auto = cfg.with_threads(0);
    /// assert_eq!(auto.num_threads, 0);
    /// ```
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the shard size for the parallel engine (builder style);
    /// `0` divides each batch evenly over the threads.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size;
        self
    }

    /// The thread count the sharded engine will actually use: an explicit
    /// [`Self::num_threads`], else the `ADVSGM_THREADS` environment
    /// variable, else 1 (see [`advsgm_parallel::resolve_threads`]).
    pub fn effective_threads(&self) -> usize {
        advsgm_parallel::resolve_threads(self.num_threads)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] naming the first offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |field: &'static str, reason: String| Err(CoreError::Config { field, reason });
        if self.dim == 0 {
            return bad("dim", "embedding dimension must be positive".into());
        }
        if self.batch_size == 0 {
            return bad("batch_size", "batch size must be positive".into());
        }
        if self.negatives == 0 {
            return bad(
                "negatives",
                "negative sampling number must be positive".into(),
            );
        }
        if self.epochs == 0 || self.disc_iters == 0 {
            return bad(
                "epochs",
                "need at least one epoch and one discriminator iteration".into(),
            );
        }
        if self.variant.is_adversarial() && self.gen_iters == 0 {
            return bad(
                "gen_iters",
                "adversarial variants need generator iterations".into(),
            );
        }
        if self.eta_d.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || self.eta_g.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            return bad(
                "eta",
                format!(
                    "learning rates must be positive, got {} / {}",
                    self.eta_d, self.eta_g
                ),
            );
        }
        if self.clip.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return bad("clip", "clipping threshold must be positive".into());
        }
        if self.variant.is_private() {
            if self.sigma.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return bad(
                    "sigma",
                    "private variants need positive noise multiplier".into(),
                );
            }
            if self.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return bad("epsilon", "privacy budget must be positive".into());
            }
            if !(self.delta > 0.0 && self.delta < 1.0) {
                return bad(
                    "delta",
                    format!("delta must be in (0,1), got {}", self.delta),
                );
            }
        }
        if self.num_threads > advsgm_parallel::MAX_THREADS {
            return bad(
                "num_threads",
                format!(
                    "at most {} worker threads, got {}",
                    advsgm_parallel::MAX_THREADS,
                    self.num_threads
                ),
            );
        }
        if self.variant.uses_constrained_sigmoid()
            && !(self.sigmoid_a > 0.0 && self.sigmoid_b > self.sigmoid_a)
        {
            return bad(
                "sigmoid_b",
                format!(
                    "need 0 < a < b, got a={} b={}",
                    self.sigmoid_a, self.sigmoid_b
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AdvSgmConfig::default();
        assert_eq!(c.dim, 128);
        assert_eq!(c.negatives, 5);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.epochs, 50);
        assert_eq!(c.disc_iters, 15);
        assert_eq!(c.gen_iters, 5);
        assert_eq!(c.eta_d, 0.1);
        assert_eq!(c.sigma, 5.0);
        assert_eq!(c.delta, 1e-5);
        assert_eq!(c.sigmoid_b, 120.0);
        c.validate().unwrap();
    }

    #[test]
    fn test_small_is_valid_for_all_variants() {
        for v in ModelVariant::all() {
            AdvSgmConfig::test_small(v).validate().unwrap();
        }
    }

    #[test]
    fn rejects_zero_dim() {
        let c = AdvSgmConfig {
            dim: 0,
            ..AdvSgmConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_delta_only_for_private() {
        let mut c = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
        c.delta = 0.0;
        assert!(c.validate().is_err());
        c.variant = ModelVariant::Sgm;
        c.validate().unwrap(); // non-private ignores delta
    }

    #[test]
    fn rejects_inverted_sigmoid_bounds() {
        let mut c = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
        c.sigmoid_b = 1e-9;
        assert!(c.validate().is_err());
        // Plain-sigmoid variants don't care.
        c.variant = ModelVariant::DpSgm;
        c.validate().unwrap();
    }

    #[test]
    fn thread_builders_roundtrip() {
        let c = AdvSgmConfig::default().with_threads(8).with_shard_size(32);
        assert_eq!(c.num_threads, 8);
        assert_eq!(c.shard_size, 32);
        assert_eq!(c.effective_threads(), 8);
        c.validate().unwrap();
    }

    #[test]
    fn rejects_absurd_thread_count() {
        let c = AdvSgmConfig::default().with_threads(4096);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_gen_iters_for_adversarial_only() {
        let mut c = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
        c.gen_iters = 0;
        assert!(c.validate().is_err());
        c.variant = ModelVariant::DpSgm;
        c.validate().unwrap();
    }
}
