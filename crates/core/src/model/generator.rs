//! The generator `G` (Section II-B.1 and Eq. 17).
//!
//! `G` holds two sub-generators: `G_{v'_j}` fakes a neighbor *of node `j`*
//! (paired with the real node `v_i`), and `G_{v'_i}` fakes one of node `i`.
//! Following the paper's description that the optimizable noise terms
//! "correspond to the parameters of a skip-gram" and that Algorithm 3
//! generates fake neighbors "for each node", each sub-generator keeps a
//! **per-node parameter table** `theta in R^{|V| x r}` — the same shape as
//! `W_in`/`W_out` — and produces
//!
//! ```text
//! v'_t = phi(theta_t + z),   z ~ N(0, sigma_z^2 I_r),
//! ```
//!
//! a noise-driven stochastic embedding of node `t` (`phi` = sigmoid).
//! Training minimises Eq. (17): make the discriminator believe fake pairs
//! are real, which aligns `phi(theta_t)` with the embeddings of `t`'s
//! actual partners. The generator's privacy is argued by post-processing
//! (Theorem 2).

use advsgm_linalg::activations::sigmoid;
use advsgm_linalg::rng::gaussian_vec;
use advsgm_linalg::DenseMatrix;
use rand::Rng;

/// Latent-noise standard deviation for fake generation.
///
/// The paper writes `N_G(sigma^2 I)` with the DP noise multiplier, but a
/// sigmoid driven by std-5 noise saturates almost everywhere and the fake
/// distribution stops depending on `theta`; unit noise keeps the generator
/// expressive. (The privacy-relevant `C^2 sigma^2` noise enters through the
/// activation arguments `N.v` of Eqs. 13/17, not here.)
const LATENT_STD: f64 = 1.0;

/// Initial bias of the generator tables: fakes start near
/// `sigmoid(-2) ~ 0.12` per coordinate, i.e. with norms comparable to the
/// clipped skip-gram gradients they are added to (Theorem 6), instead of
/// the `0.5 sqrt(r)`-norm fakes a zero init would produce.
const INIT_BIAS: f64 = -2.0;

/// One per-node fake-neighbor generator: `v'_t = phi(theta_t + z)`.
#[derive(Debug, Clone)]
pub struct Generator {
    theta: DenseMatrix,
}

/// A sampled fake neighbor with the intermediates needed for backprop.
#[derive(Debug, Clone)]
pub struct FakeNeighbor {
    /// The node whose neighbor is being faked.
    pub node: usize,
    /// The generated embedding `v' = phi(theta_node + z)` (entries in (0,1)).
    pub v: Vec<f64>,
}

impl Generator {
    /// Creates a generator table for `num_nodes` nodes of dimension `r`.
    pub fn new(num_nodes: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let mut theta = DenseMatrix::zeros(num_nodes, dim);
        for v in theta.as_mut_slice().iter_mut() {
            *v = INIT_BIAS + 0.1 * advsgm_linalg::rng::gaussian(rng, 1.0);
        }
        Self { theta }
    }

    /// Rebuilds a generator from a previously trained parameter table
    /// (checkpoint resume); the session layer validates the shape.
    pub(crate) fn from_weights(theta: DenseMatrix) -> Self {
        Self { theta }
    }

    /// Embedding dimension `r`.
    pub fn dim(&self) -> usize {
        self.theta.cols()
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.theta.rows()
    }

    /// Samples one fake neighbor of `node`.
    pub fn generate(&self, node: usize, rng: &mut impl Rng) -> FakeNeighbor {
        let z = gaussian_vec(rng, LATENT_STD, self.dim());
        let v = self
            .theta
            .row(node)
            .iter()
            .zip(&z)
            .map(|(&t, &zi)| sigmoid(t + zi))
            .collect();
        FakeNeighbor { node, v }
    }

    /// The deterministic center `phi(theta_node)` of a node's fakes
    /// (used by diagnostics/tests).
    pub fn center(&self, node: usize) -> Vec<f64> {
        self.theta.row(node).iter().map(|&t| sigmoid(t)).collect()
    }

    /// Accumulates `dL/dtheta_node` for one sample into the sparse buffer:
    /// `dL/dtheta = upstream .* v'(1 - v')` (the latent draw enters
    /// additively, so the Jacobian w.r.t. `theta` equals the one w.r.t. the
    /// pre-activation).
    pub fn accumulate_grad(
        &self,
        sample: &FakeNeighbor,
        upstream: &[f64],
        grads: &mut std::collections::HashMap<usize, (Vec<f64>, usize)>,
    ) {
        debug_assert_eq!(upstream.len(), self.dim());
        let delta: Vec<f64> = upstream
            .iter()
            .zip(&sample.v)
            .map(|(&g, &v)| g * v * (1.0 - v))
            .collect();
        match grads.get_mut(&sample.node) {
            Some((sum, c)) => {
                advsgm_linalg::vector::add_assign(sum, &delta);
                *c += 1;
            }
            None => {
                grads.insert(sample.node, (delta, 1));
            }
        }
    }

    /// Applies per-row descent steps `theta_t -= eta * grad_t / count_t`.
    pub fn step(&mut self, eta: f64, grads: &std::collections::HashMap<usize, (Vec<f64>, usize)>) {
        for (&node, (g, c)) in grads {
            let row = self.theta.row_mut(node);
            let inv = 1.0 / (*c).max(1) as f64;
            for (p, gv) in row.iter_mut().zip(g) {
                *p -= eta * gv * inv;
            }
        }
    }

    /// Read-only parameter view (for tests/inspection).
    pub fn weights(&self) -> &DenseMatrix {
        &self.theta
    }
}

/// The two generators of the paper's architecture.
#[derive(Debug, Clone)]
pub struct GeneratorPair {
    /// `G_{v'_j}`: fakes neighbors of the *output-side* node (paired with
    /// the real input-side node `v_i`).
    pub for_i: Generator,
    /// `G_{v'_i}`: fakes neighbors of the *input-side* node (paired with
    /// the real output-side node `v_j`).
    pub for_j: Generator,
}

impl GeneratorPair {
    /// Creates both generator tables.
    pub fn new(num_nodes: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            for_i: Generator::new(num_nodes, dim, rng),
            for_j: Generator::new(num_nodes, dim, rng),
        }
    }

    /// Rebuilds the pair from previously trained parameter tables
    /// (checkpoint resume).
    pub(crate) fn from_parts(for_i: DenseMatrix, for_j: DenseMatrix) -> Self {
        Self {
            for_i: Generator::from_weights(for_i),
            for_j: Generator::from_weights(for_j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_linalg::rng::seeded;
    use advsgm_linalg::vector;
    use std::collections::HashMap;

    #[test]
    fn generated_entries_in_unit_interval_with_small_init_norm() {
        let mut rng = seeded(1);
        let g = Generator::new(10, 16, &mut rng);
        let f = g.generate(3, &mut rng);
        assert_eq!(f.node, 3);
        assert_eq!(f.v.len(), 16);
        assert!(f.v.iter().all(|&x| x > 0.0 && x < 1.0));
        // Initial fakes are deliberately small-norm (INIT_BIAS = -2).
        assert!(
            vector::norm2(&f.v) < 0.5 * (16.0f64).sqrt(),
            "norm too large"
        );
    }

    #[test]
    fn different_draws_differ_but_share_center() {
        let mut rng = seeded(2);
        let g = Generator::new(4, 8, &mut rng);
        let a = g.generate(1, &mut rng);
        let b = g.generate(1, &mut rng);
        assert_ne!(a.v, b.v);
        // Monte-Carlo mean approaches the deterministic center.
        let mut mean = vec![0.0; 8];
        let n = 4000;
        for _ in 0..n {
            vector::add_assign(&mut mean, &g.generate(1, &mut rng).v);
        }
        vector::scale(&mut mean, 1.0 / n as f64);
        let center = g.center(1);
        for d in 0..8 {
            // The sigmoid of a Gaussian is biased toward 0.5 relative to
            // sigmoid(mean), so compare loosely.
            assert!((mean[d] - center[d]).abs() < 0.1, "d={d}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // L = sum(v') for a fixed latent draw; check dL/dtheta numerically.
        let mut rng = seeded(3);
        let mut g = Generator::new(3, 4, &mut rng);
        // Reconstruct a sample with a known z by generating then inverting:
        // easier to test through the public API with zero latent noise is
        // not possible, so use the chain rule identity directly: for the
        // sampled v', dL/dtheta = upstream .* v'(1-v') at that draw.
        let f = g.generate(2, &mut rng);
        let mut grads = HashMap::new();
        g.accumulate_grad(&f, &[1.0; 4], &mut grads);
        let (gv, c) = &grads[&2];
        assert_eq!(*c, 1);
        for (d, (&g_val, &v_val)) in gv.iter().zip(&f.v).enumerate() {
            let expected = v_val * (1.0 - v_val);
            assert!((g_val - expected).abs() < 1e-12, "d={d}");
        }
        // Step moves theta opposite the gradient.
        let before = g.weights().get(2, 0);
        g.step(0.5, &grads);
        let after = g.weights().get(2, 0);
        assert!(after < before);
    }

    #[test]
    fn training_aligns_center_with_target() {
        // Repeatedly push fakes of node 0 toward a target direction using
        // the generator-loss upstream -F * target; the center must align.
        let mut rng = seeded(4);
        let mut g = Generator::new(2, 6, &mut rng);
        let target = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let before = vector::cosine(&g.center(0), &target);
        for _ in 0..300 {
            let f = g.generate(0, &mut rng);
            let s = vector::dot(&f.v, &target);
            let coeff = -advsgm_linalg::activations::sigmoid(s); // d log(1-F)/ds
            let upstream: Vec<f64> = target.iter().map(|&t| coeff * t).collect();
            let mut grads = HashMap::new();
            g.accumulate_grad(&f, &upstream, &mut grads);
            g.step(0.5, &grads);
        }
        let after = vector::cosine(&g.center(0), &target);
        assert!(after > before, "cosine {before} -> {after} did not improve");
        assert!(after > 0.8, "alignment too weak: {after}");
    }

    #[test]
    fn pair_has_independent_tables() {
        let mut rng = seeded(5);
        let p = GeneratorPair::new(4, 4, &mut rng);
        assert_ne!(p.for_i.weights(), p.for_j.weights());
        assert_eq!(p.for_i.num_nodes(), 4);
    }
}
