//! Model state: embedding matrices and generators.

pub mod embeddings;
pub mod generator;

pub use embeddings::Embeddings;
pub use generator::{Generator, GeneratorPair};
