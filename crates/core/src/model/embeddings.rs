//! The discriminator's parameter set `Theta_D = {W_in, W_out}`.
//!
//! Skip-gram keeps two vectors per node: the *input* (node) vector `v_i` in
//! `W_in` and the *output* (context) vector `v_j` in `W_out` (Definition 3
//! of the paper: `v_i in W_in`, `v_j in W_out`). The paper releases and
//! evaluates the node vectors only ("We only employ the node vectors for
//! our experiments"), which [`Embeddings::into_node_vectors`] returns.

use advsgm_linalg::init::{embedding_uniform, normalize_rows, project_rows_to_ball};
use advsgm_linalg::DenseMatrix;
use rand::Rng;

/// Applies a descent step `row -= eta * grad`, optionally projecting the
/// row back into the unit ball.
///
/// This is *the* embedding update: [`Embeddings::step_input`],
/// [`Embeddings::step_output`], and the out-of-core engine's partition
/// slots all call it, so every engine applies bit-identical arithmetic.
#[inline]
pub(crate) fn step_row(row: &mut [f64], eta: f64, grad: &[f64], project: bool) {
    for (p, g) in row.iter_mut().zip(grad) {
        *p -= eta * g;
    }
    if project {
        advsgm_linalg::vector::clip_l2(row, 1.0);
    }
}

/// The pair of skip-gram embedding matrices.
#[derive(Debug, Clone)]
pub struct Embeddings {
    w_in: DenseMatrix,
    w_out: DenseMatrix,
}

impl Embeddings {
    /// Initialises both matrices with the word2vec-style uniform law and
    /// row-normalises them (the paper's `C = 1` normalisation).
    pub fn init(num_nodes: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let mut w_in = embedding_uniform(rng, num_nodes, dim);
        let mut w_out = embedding_uniform(rng, num_nodes, dim);
        normalize_rows(&mut w_in);
        normalize_rows(&mut w_out);
        Self { w_in, w_out }
    }

    /// Rebuilds the pair from previously trained matrices (checkpoint
    /// resume). Shapes must match; the session layer validates them
    /// against the graph and configuration before calling.
    pub(crate) fn from_parts(w_in: DenseMatrix, w_out: DenseMatrix) -> Self {
        debug_assert_eq!(w_in.shape(), w_out.shape(), "mismatched embedding shapes");
        Self { w_in, w_out }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.w_in.rows()
    }

    /// Embedding dimension `r`.
    pub fn dim(&self) -> usize {
        self.w_in.cols()
    }

    /// Input (node) vector of node `i`.
    #[inline]
    pub fn input(&self, i: usize) -> &[f64] {
        self.w_in.row(i)
    }

    /// Output (context) vector of node `j`.
    #[inline]
    pub fn output(&self, j: usize) -> &[f64] {
        self.w_out.row(j)
    }

    /// Applies a descent step `W_in[i] -= eta * grad`, optionally projecting
    /// the row back into the unit ball.
    pub fn step_input(&mut self, i: usize, eta: f64, grad: &[f64], project: bool) {
        step_row(self.w_in.row_mut(i), eta, grad, project);
    }

    /// Applies a descent step to `W_out[j]`.
    pub fn step_output(&mut self, j: usize, eta: f64, grad: &[f64], project: bool) {
        step_row(self.w_out.row_mut(j), eta, grad, project);
    }

    /// Re-projects every row of both matrices onto the unit ball.
    pub fn project_all(&mut self) {
        project_rows_to_ball(&mut self.w_in, 1.0);
        project_rows_to_ball(&mut self.w_out, 1.0);
    }

    /// Read-only view of `W_in`.
    pub fn w_in(&self) -> &DenseMatrix {
        &self.w_in
    }

    /// Read-only view of `W_out`.
    pub fn w_out(&self) -> &DenseMatrix {
        &self.w_out
    }

    /// Consumes the pair, returning the node-vector matrix `W_in` — the
    /// embedding the paper releases for downstream tasks.
    pub fn into_node_vectors(self) -> DenseMatrix {
        self.w_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_linalg::rng::seeded;
    use advsgm_linalg::vector::norm2;

    #[test]
    fn init_rows_are_unit_norm() {
        let mut rng = seeded(1);
        let e = Embeddings::init(10, 8, &mut rng);
        for i in 0..10 {
            assert!((norm2(e.input(i)) - 1.0).abs() < 1e-9);
            assert!((norm2(e.output(i)) - 1.0).abs() < 1e-9);
        }
        assert_eq!(e.num_nodes(), 10);
        assert_eq!(e.dim(), 8);
    }

    #[test]
    fn in_and_out_matrices_differ() {
        let mut rng = seeded(2);
        let e = Embeddings::init(4, 4, &mut rng);
        assert_ne!(e.input(0), e.output(0));
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut rng = seeded(3);
        let mut e = Embeddings::init(3, 2, &mut rng);
        let before = e.input(1).to_vec();
        let grad = vec![1.0, -1.0];
        e.step_input(1, 0.1, &grad, false);
        let after = e.input(1);
        assert!((after[0] - (before[0] - 0.1)).abs() < 1e-12);
        assert!((after[1] - (before[1] + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn projection_caps_row_norm() {
        let mut rng = seeded(4);
        let mut e = Embeddings::init(2, 2, &mut rng);
        // A huge step would blow past the ball without projection.
        e.step_input(0, 10.0, &[-5.0, -5.0], true);
        assert!(norm2(e.input(0)) <= 1.0 + 1e-12);
        e.step_output(1, 10.0, &[-5.0, -5.0], false);
        assert!(norm2(e.output(1)) > 1.0);
        e.project_all();
        assert!(norm2(e.output(1)) <= 1.0 + 1e-12);
    }

    #[test]
    fn node_vectors_are_w_in() {
        let mut rng = seeded(5);
        let e = Embeddings::init(3, 2, &mut rng);
        let w_in = e.w_in().clone();
        assert_eq!(e.into_node_vectors(), w_in);
    }
}
