//! The model variants evaluated in the paper (Table V and Figs. 3–4).

use std::fmt;

/// Which skip-gram model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// `SGM (No DP)`: the original skip-gram (LINE, Eq. 2) with plain SGD.
    Sgm,
    /// `DP-SGM`: skip-gram trained with DPSGD (clipped per-pair gradients,
    /// Gaussian noise on the batch sum, Eq. 5/6 mechanics).
    DpSgm,
    /// `DP-ASGM`: the Section III-B first cut — adversarial skip-gram whose
    /// combined gradient is perturbed directly by DPSGD (Eq. 6).
    DpAsgm,
    /// `AdvSGM`: the paper's contribution — optimizable noise terms inside
    /// the adversarial activations plus the Theorem-6 weight tuning, giving
    /// DP updates without extra noise injection.
    AdvSgm,
    /// `AdvSGM (No DP)`: the same architecture with the noise terms zeroed
    /// and no privacy accounting.
    AdvSgmNoDp,
}

impl ModelVariant {
    /// Whether training consumes privacy budget.
    pub fn is_private(&self) -> bool {
        matches!(
            self,
            ModelVariant::DpSgm | ModelVariant::DpAsgm | ModelVariant::AdvSgm
        )
    }

    /// Whether the adversarial module (generators + fake neighbors) is on.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            ModelVariant::DpAsgm | ModelVariant::AdvSgm | ModelVariant::AdvSgmNoDp
        )
    }

    /// Whether the constrained sigmoid of Section IV-C replaces the plain
    /// sigmoid (only the full AdvSGM architecture uses it).
    pub fn uses_constrained_sigmoid(&self) -> bool {
        matches!(self, ModelVariant::AdvSgm | ModelVariant::AdvSgmNoDp)
    }

    /// Display name as used in the paper's tables.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelVariant::Sgm => "SGM(No DP)",
            ModelVariant::DpSgm => "DP-SGM",
            ModelVariant::DpAsgm => "DP-ASGM",
            ModelVariant::AdvSgm => "AdvSGM",
            ModelVariant::AdvSgmNoDp => "AdvSGM(No DP)",
        }
    }

    /// All variants in the order Table V lists them.
    pub fn all() -> [ModelVariant; 5] {
        [
            ModelVariant::Sgm,
            ModelVariant::AdvSgmNoDp,
            ModelVariant::DpSgm,
            ModelVariant::DpAsgm,
            ModelVariant::AdvSgm,
        ]
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_flags() {
        assert!(!ModelVariant::Sgm.is_private());
        assert!(!ModelVariant::AdvSgmNoDp.is_private());
        assert!(ModelVariant::DpSgm.is_private());
        assert!(ModelVariant::DpAsgm.is_private());
        assert!(ModelVariant::AdvSgm.is_private());
    }

    #[test]
    fn adversarial_flags() {
        assert!(!ModelVariant::Sgm.is_adversarial());
        assert!(!ModelVariant::DpSgm.is_adversarial());
        assert!(ModelVariant::DpAsgm.is_adversarial());
        assert!(ModelVariant::AdvSgm.is_adversarial());
        assert!(ModelVariant::AdvSgmNoDp.is_adversarial());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelVariant::AdvSgm.to_string(), "AdvSGM");
        assert_eq!(ModelVariant::Sgm.to_string(), "SGM(No DP)");
    }

    #[test]
    fn all_lists_five() {
        assert_eq!(ModelVariant::all().len(), 5);
    }
}
