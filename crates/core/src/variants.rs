//! The model variants evaluated in the paper (Table V and Figs. 3–4),
//! extended with the follow-up workloads of DESIGN.md §16.
//!
//! This module is also the single source of truth for the **wire codes**
//! stamped into `.aemb` releases and `.actk` checkpoints
//! (`docs/FORMAT.md`): [`ModelVariant::wire_code`] /
//! [`ModelVariant::from_wire_code`] are the one append-only table both
//! `advsgm-core` and `advsgm-store` read, so the two crates agree by
//! construction.

use std::fmt;

use crate::weighting::PairWeighting;

/// Which skip-gram model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// `SGM (No DP)`: the original skip-gram (LINE, Eq. 2) with plain SGD.
    Sgm,
    /// `DP-SGM`: skip-gram trained with DPSGD (clipped per-pair gradients,
    /// Gaussian noise on the batch sum, Eq. 5/6 mechanics).
    DpSgm,
    /// `DP-ASGM`: the Section III-B first cut — adversarial skip-gram whose
    /// combined gradient is perturbed directly by DPSGD (Eq. 6).
    DpAsgm,
    /// `AdvSGM`: the paper's contribution — optimizable noise terms inside
    /// the adversarial activations plus the Theorem-6 weight tuning, giving
    /// DP updates without extra noise injection.
    AdvSgm,
    /// `AdvSGM (No DP)`: the same architecture with the noise terms zeroed
    /// and no privacy accounting.
    AdvSgmNoDp,
    /// `Signed-AdvSGM`: AdvSGM on signed (friend/foe) graphs — foe edges
    /// in positive batches use the repelling skip-gram gradient (the loss
    /// sign structure of arXiv 2512.00307 §IV) while the Theorem-6
    /// adversarial machinery, per-pair clipping, and accountant are
    /// unchanged, so the privacy analysis applies verbatim.
    SignedAdvSgm,
    /// `SP-AdvSGM`: AdvSGM with structure-preference pair weighting (arXiv
    /// 2501.03451) — common-neighbor/degree-derived weights in `(0, 1]`
    /// scale each **already clipped** per-pair gradient before noise, so
    /// sensitivity stays bounded by the clip norm and the accountant is
    /// again unchanged.
    SpAdvSgm,
}

impl ModelVariant {
    /// Whether training consumes privacy budget.
    pub fn is_private(&self) -> bool {
        matches!(
            self,
            ModelVariant::DpSgm
                | ModelVariant::DpAsgm
                | ModelVariant::AdvSgm
                | ModelVariant::SignedAdvSgm
                | ModelVariant::SpAdvSgm
        )
    }

    /// Whether the adversarial module (generators + fake neighbors) is on.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            ModelVariant::DpAsgm
                | ModelVariant::AdvSgm
                | ModelVariant::AdvSgmNoDp
                | ModelVariant::SignedAdvSgm
                | ModelVariant::SpAdvSgm
        )
    }

    /// Whether the constrained sigmoid of Section IV-C replaces the plain
    /// sigmoid (the full AdvSGM architecture and its workload variants).
    pub fn uses_constrained_sigmoid(&self) -> bool {
        matches!(
            self,
            ModelVariant::AdvSgm
                | ModelVariant::AdvSgmNoDp
                | ModelVariant::SignedAdvSgm
                | ModelVariant::SpAdvSgm
        )
    }

    /// Whether the variant consumes the graph's friend/foe sign channel
    /// (sign-blind variants treat every edge as a friend edge).
    pub fn is_sign_aware(&self) -> bool {
        matches!(self, ModelVariant::SignedAdvSgm)
    }

    /// The pair-weighting strategy this variant trains under
    /// ([`PairWeighting::Uniform`] is bitwise-identical to the pre-seam
    /// behavior).
    pub fn pair_weighting(&self) -> PairWeighting {
        match self {
            ModelVariant::SpAdvSgm => PairWeighting::StructurePreference,
            _ => PairWeighting::Uniform,
        }
    }

    /// Display name as used in the paper's tables (and, for the follow-up
    /// workloads, the follow-up papers' names).
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelVariant::Sgm => "SGM(No DP)",
            ModelVariant::DpSgm => "DP-SGM",
            ModelVariant::DpAsgm => "DP-ASGM",
            ModelVariant::AdvSgm => "AdvSGM",
            ModelVariant::AdvSgmNoDp => "AdvSGM(No DP)",
            ModelVariant::SignedAdvSgm => "Signed-AdvSGM",
            ModelVariant::SpAdvSgm => "SP-AdvSGM",
        }
    }

    /// The append-only wire code stamped into `.aemb` headers (byte 20)
    /// and `.actk` headers (byte 9); see `docs/FORMAT.md`. Existing values
    /// never change meaning across versions — new variants append.
    pub fn wire_code(&self) -> u8 {
        match self {
            ModelVariant::Sgm => 0,
            ModelVariant::DpSgm => 1,
            ModelVariant::DpAsgm => 2,
            ModelVariant::AdvSgm => 3,
            ModelVariant::AdvSgmNoDp => 4,
            ModelVariant::SignedAdvSgm => 5,
            ModelVariant::SpAdvSgm => 6,
        }
    }

    /// Inverse of [`ModelVariant::wire_code`]; `None` for unknown codes
    /// (the store layer maps that to a typed corruption error).
    pub fn from_wire_code(code: u8) -> Option<ModelVariant> {
        Some(match code {
            0 => ModelVariant::Sgm,
            1 => ModelVariant::DpSgm,
            2 => ModelVariant::DpAsgm,
            3 => ModelVariant::AdvSgm,
            4 => ModelVariant::AdvSgmNoDp,
            5 => ModelVariant::SignedAdvSgm,
            6 => ModelVariant::SpAdvSgm,
            _ => return None,
        })
    }

    /// All variants: the five Table-V models in the order Table V lists
    /// them, then the workload variants in wire-code order.
    pub fn all() -> [ModelVariant; 7] {
        [
            ModelVariant::Sgm,
            ModelVariant::AdvSgmNoDp,
            ModelVariant::DpSgm,
            ModelVariant::DpAsgm,
            ModelVariant::AdvSgm,
            ModelVariant::SignedAdvSgm,
            ModelVariant::SpAdvSgm,
        ]
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_flags() {
        assert!(!ModelVariant::Sgm.is_private());
        assert!(!ModelVariant::AdvSgmNoDp.is_private());
        assert!(ModelVariant::DpSgm.is_private());
        assert!(ModelVariant::DpAsgm.is_private());
        assert!(ModelVariant::AdvSgm.is_private());
        assert!(ModelVariant::SignedAdvSgm.is_private());
        assert!(ModelVariant::SpAdvSgm.is_private());
    }

    #[test]
    fn adversarial_flags() {
        assert!(!ModelVariant::Sgm.is_adversarial());
        assert!(!ModelVariant::DpSgm.is_adversarial());
        assert!(ModelVariant::DpAsgm.is_adversarial());
        assert!(ModelVariant::AdvSgm.is_adversarial());
        assert!(ModelVariant::AdvSgmNoDp.is_adversarial());
        assert!(ModelVariant::SignedAdvSgm.is_adversarial());
        assert!(ModelVariant::SpAdvSgm.is_adversarial());
    }

    #[test]
    fn sign_and_weighting_flags() {
        for v in ModelVariant::all() {
            assert_eq!(v.is_sign_aware(), v == ModelVariant::SignedAdvSgm);
            let expect = if v == ModelVariant::SpAdvSgm {
                PairWeighting::StructurePreference
            } else {
                PairWeighting::Uniform
            };
            assert_eq!(v.pair_weighting(), expect, "{v}");
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelVariant::AdvSgm.to_string(), "AdvSGM");
        assert_eq!(ModelVariant::Sgm.to_string(), "SGM(No DP)");
        assert_eq!(ModelVariant::SignedAdvSgm.to_string(), "Signed-AdvSGM");
        assert_eq!(ModelVariant::SpAdvSgm.to_string(), "SP-AdvSGM");
    }

    #[test]
    fn all_lists_seven() {
        assert_eq!(ModelVariant::all().len(), 7);
    }

    #[test]
    fn wire_codes_roundtrip_exhaustively() {
        // Every variant must have a distinct code that survives the
        // roundtrip. The exhaustive match in `wire_code` means adding a
        // `ModelVariant` without a code is a compile error, and this test
        // pins the roundtrip plus append-only values.
        let mut seen = std::collections::HashSet::new();
        for v in ModelVariant::all() {
            let code = v.wire_code();
            assert!(seen.insert(code), "duplicate wire code {code}");
            assert_eq!(ModelVariant::from_wire_code(code), Some(v));
        }
        // The original five codes are frozen (append-only policy).
        assert_eq!(ModelVariant::Sgm.wire_code(), 0);
        assert_eq!(ModelVariant::DpSgm.wire_code(), 1);
        assert_eq!(ModelVariant::DpAsgm.wire_code(), 2);
        assert_eq!(ModelVariant::AdvSgm.wire_code(), 3);
        assert_eq!(ModelVariant::AdvSgmNoDp.wire_code(), 4);
        assert_eq!(ModelVariant::from_wire_code(200), None);
    }
}
