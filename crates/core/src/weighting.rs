//! Module-weight settings (Section IV-C, Fig. 2).
//!
//! The discriminator loss `L_Nov = L_sgm + lambda1 L_adv1 + lambda2 L_adv2`
//! (Eq. 16/24) is controlled by the weights `lambda`. Theorem 6 fixes
//! `lambda = 1/S(.)` so the adversarial gradient collapses to `v' + N` and
//! DP needs no extra noise; `Fixed(0.5)` and `Fixed(1.0)` are the baselines
//! Fig. 2 compares against.

use crate::sigmoid::SigmoidKind;

/// How the adversarial module weight `lambda` is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightMode {
    /// A constant weight (the common deep-learning choice; Fig. 2 uses 0.5
    /// and 1.0 as baselines).
    Fixed(f64),
    /// The paper's adaptive `lambda = 1/S(arg)` (Theorem 6).
    InverseS,
}

impl WeightMode {
    /// The weight applied to an adversarial term whose activation argument
    /// is `arg`, under link `kind`.
    #[inline]
    pub fn lambda(&self, kind: SigmoidKind, arg: f64) -> f64 {
        match self {
            WeightMode::Fixed(l) => *l,
            WeightMode::InverseS => kind.inverse_weight(arg),
        }
    }

    /// Display label matching Fig. 2's legend.
    pub fn label(&self) -> String {
        match self {
            WeightMode::Fixed(l) => format!("lambda = {l}"),
            WeightMode::InverseS => "lambda = 1/S(.)".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_argument() {
        let w = WeightMode::Fixed(0.5);
        assert_eq!(w.lambda(SigmoidKind::Plain, -3.0), 0.5);
        assert_eq!(w.lambda(SigmoidKind::Plain, 3.0), 0.5);
    }

    #[test]
    fn inverse_s_matches_kind() {
        let kind = SigmoidKind::paper_constrained();
        let w = WeightMode::InverseS;
        for &x in &[-2.0, 0.0, 2.0] {
            assert_eq!(w.lambda(kind, x), kind.inverse_weight(x));
        }
    }

    #[test]
    fn labels() {
        assert_eq!(WeightMode::Fixed(1.0).label(), "lambda = 1");
        assert!(WeightMode::InverseS.label().contains("1/S"));
    }
}
