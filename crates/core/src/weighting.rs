//! Module-weight settings (Section IV-C, Fig. 2) and the pair-weighting
//! seam (DESIGN.md §16).
//!
//! The discriminator loss `L_Nov = L_sgm + lambda1 L_adv1 + lambda2 L_adv2`
//! (Eq. 16/24) is controlled by the weights `lambda`. Theorem 6 fixes
//! `lambda = 1/S(.)` so the adversarial gradient collapses to `v' + N` and
//! DP needs no extra noise; `Fixed(0.5)` and `Fixed(1.0)` are the baselines
//! Fig. 2 compares against.
//!
//! [`PairWeighting`] is orthogonal: it scales each **per-pair** clipped
//! gradient by a data-derived weight `w(i,j) ∈ (0, 1]` (arXiv 2501.03451's
//! structure-preference idea). Because the scaling happens *after* the
//! per-pair L2 clip and *before* noise, the sensitivity of each summand
//! stays bounded by the clip norm `C`, so the Theorem-6/7 privacy analysis
//! is untouched. [`PairWeighting::Uniform`] applies no scaling at all and
//! is bitwise-identical to the pre-seam behavior.

use advsgm_graph::Graph;
use advsgm_graph::NodeId;

use crate::sigmoid::SigmoidKind;

/// How the adversarial module weight `lambda` is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightMode {
    /// A constant weight (the common deep-learning choice; Fig. 2 uses 0.5
    /// and 1.0 as baselines).
    Fixed(f64),
    /// The paper's adaptive `lambda = 1/S(arg)` (Theorem 6).
    InverseS,
}

impl WeightMode {
    /// The weight applied to an adversarial term whose activation argument
    /// is `arg`, under link `kind`.
    #[inline]
    pub fn lambda(&self, kind: SigmoidKind, arg: f64) -> f64 {
        match self {
            WeightMode::Fixed(l) => *l,
            WeightMode::InverseS => kind.inverse_weight(arg),
        }
    }

    /// Display label matching Fig. 2's legend.
    pub fn label(&self) -> String {
        match self {
            WeightMode::Fixed(l) => format!("lambda = {l}"),
            WeightMode::InverseS => "lambda = 1/S(.)".to_string(),
        }
    }
}

/// How per-pair gradients are weighted inside a discriminator batch
/// (DESIGN.md §16; the seam behind [`crate::ModelVariant::pair_weighting`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PairWeighting {
    /// Every pair weighs 1 — today's behavior, bitwise-identical to the
    /// pre-seam trainer (no scaling is ever applied, not even by 1.0).
    #[default]
    Uniform,
    /// Structure-preference weights (arXiv 2501.03451): positive pairs are
    /// weighted by their common-neighbor/degree similarity
    /// [`structure_preference_weight`], so structurally entangled pairs
    /// keep more of their (clipped) gradient than incidental ones.
    /// Sampled negatives always weigh 1.
    StructurePreference,
}

impl PairWeighting {
    /// Display label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PairWeighting::Uniform => "uniform",
            PairWeighting::StructurePreference => "structure-preference",
        }
    }
}

/// The structure-preference weight of a node pair:
///
/// `w(u, v) = (1 + CN(u, v)) / (1 + deg(u) + deg(v) - CN(u, v))`
///
/// where `CN` is the common-neighbor count — a smoothed Jaccard-style
/// similarity over the open neighborhoods. Always in `(0, 1]`, exactly 1
/// only for two isolated nodes, and computed RNG-free from the CSR's
/// sorted neighbor lists, so it is deterministic and engine-invariant.
pub fn structure_preference_weight(graph: &Graph, u: usize, v: usize) -> f64 {
    let nu = graph.neighbors(NodeId::from_index(u));
    let nv = graph.neighbors(NodeId::from_index(v));
    // Sorted-list intersection.
    let mut cn = 0usize;
    let (mut a, mut b) = (0usize, 0usize);
    while a < nu.len() && b < nv.len() {
        match nu[a].cmp(&nv[b]) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                cn += 1;
                a += 1;
                b += 1;
            }
        }
    }
    (1.0 + cn as f64) / (1.0 + (nu.len() + nv.len() - cn) as f64)
}

/// Precomputes [`structure_preference_weight`] for every edge of `graph`,
/// aligned with [`Graph::edges`]. This is the per-run table the sampler
/// attaches to positive batches under
/// [`PairWeighting::StructurePreference`].
pub fn precompute_edge_weights(graph: &Graph) -> Vec<f64> {
    graph
        .edges()
        .iter()
        .map(|e| structure_preference_weight(graph, e.u().index(), e.v().index()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_argument() {
        let w = WeightMode::Fixed(0.5);
        assert_eq!(w.lambda(SigmoidKind::Plain, -3.0), 0.5);
        assert_eq!(w.lambda(SigmoidKind::Plain, 3.0), 0.5);
    }

    #[test]
    fn inverse_s_matches_kind() {
        let kind = SigmoidKind::paper_constrained();
        let w = WeightMode::InverseS;
        for &x in &[-2.0, 0.0, 2.0] {
            assert_eq!(w.lambda(kind, x), kind.inverse_weight(x));
        }
    }

    #[test]
    fn labels() {
        assert_eq!(WeightMode::Fixed(1.0).label(), "lambda = 1");
        assert!(WeightMode::InverseS.label().contains("1/S"));
        assert_eq!(PairWeighting::Uniform.label(), "uniform");
        assert_eq!(
            PairWeighting::StructurePreference.label(),
            "structure-preference"
        );
    }

    #[test]
    fn structure_weights_are_in_unit_interval_and_ordered() {
        use advsgm_graph::generators::classic::karate_club;
        let g = karate_club();
        for e in g.edges() {
            let w = structure_preference_weight(&g, e.u().index(), e.v().index());
            assert!(w > 0.0 && w <= 1.0, "weight {w} out of (0,1] for {e}");
        }
        // A triangle-sharing pair beats a pair with disjoint neighborhoods
        // at equal degree sums: w = (1+CN)/(1+du+dv-CN) is increasing in CN.
        // Nodes 0 and 1 of karate share many neighbors; 0 and 33 share few
        // relative to their degrees.
        let close = structure_preference_weight(&g, 0, 1);
        let far = structure_preference_weight(&g, 0, 33);
        assert!(close > far, "{close} vs {far}");
    }

    #[test]
    fn isolated_pair_weighs_one() {
        use advsgm_graph::{Edge, Graph};
        let g = Graph::from_parts(4, vec![Edge::from_raw(0, 1)], None);
        assert_eq!(structure_preference_weight(&g, 2, 3), 1.0);
    }

    #[test]
    fn precomputed_table_aligns_with_edges() {
        use advsgm_graph::generators::classic::karate_club;
        let g = karate_club();
        let table = precompute_edge_weights(&g);
        assert_eq!(table.len(), g.num_edges());
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(
                table[i],
                structure_preference_weight(&g, e.u().index(), e.v().index())
            );
        }
    }
}
