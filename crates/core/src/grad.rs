//! Analytic per-pair gradients.
//!
//! All losses in the paper are compositions of `ln S(.)` / `ln(1 - S(.))`
//! with inner products, so per-pair gradients are closed-form:
//!
//! * positive skip-gram pair `(v_i, v_j)`, loss `-ln S(v_i . v_j)`
//!   (Eq. 2 as a minimisation):
//!   `d/dv_i = c v_j`, `d/dv_j = c v_i` with `c = -S'(x)/S(x) < 0`;
//! * negative pair `(v_i, v_n)`, loss `-ln S(-(v_n . v_i))`: the same with
//!   the sign of the partner flipped;
//! * AdvSGM's discriminator update (Theorem 6, Eqs. 19/21): the adversarial
//!   term with `lambda = 1/S` collapses to the **fake neighbor itself**, so
//!   the released per-pair gradient is `clip(dL_sgm/dv + v')` and the
//!   mechanism noise is added by the trainer per batch;
//! * DP-ASGM (the Section III-B first cut) uses the *real* adversarial
//!   gradient `lambda S'(s)/(1-S(s)) v'` (Eq. 11) inside the clip instead.

use advsgm_linalg::{backend, vector};

use crate::sigmoid::SigmoidKind;

/// Gradients of one pair-loss w.r.t. both endpoint vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct PairGrads {
    /// Gradient w.r.t. the first (input/`W_in`) vector.
    pub first: Vec<f64>,
    /// Gradient w.r.t. the second (output/`W_out`) vector.
    pub second: Vec<f64>,
}

/// Gradients of `-ln S(v_i . v_j)` w.r.t. `(v_i, v_j)`.
pub fn sgm_positive_grads(kind: SigmoidKind, vi: &[f64], vj: &[f64]) -> PairGrads {
    let x = backend::dot(vi, vj);
    let c = kind.neg_log_grad(x);
    PairGrads {
        first: vj.iter().map(|&v| c * v).collect(),
        second: vi.iter().map(|&v| c * v).collect(),
    }
}

/// Gradients of `-ln S(-(v_n . v_i))` w.r.t. `(v_i, v_n)` — the negative-
/// sample term of Eq. (2).
pub fn sgm_negative_grads(kind: SigmoidKind, vi: &[f64], vn: &[f64]) -> PairGrads {
    let x = -backend::dot(vn, vi);
    let c = kind.neg_log_grad(x);
    PairGrads {
        first: vn.iter().map(|&v| -c * v).collect(),
        second: vi.iter().map(|&v| -c * v).collect(),
    }
}

/// AdvSGM's Theorem-6 update direction for one pair *before* clipping:
/// `dL_sgm/dv + v'` (the adaptive weight `lambda = 1/S` has already
/// cancelled the sigmoid factor, leaving the bare fake neighbor).
pub fn advsgm_augment(sgm_grad: &mut [f64], fake: &[f64]) {
    vector::add_assign(sgm_grad, fake);
}

/// DP-ASGM's *real* adversarial gradient contribution for one side of a
/// pair (Eq. 11 generalised to any link `S`): adds
/// `lambda * S'(s)/(1 - S(s)) * v'` to `sgm_grad`, where
/// `s = v . v'` is the discriminant argument.
pub fn dpasgm_augment(
    kind: SigmoidKind,
    lambda: f64,
    real: &[f64],
    fake: &[f64],
    sgm_grad: &mut [f64],
) {
    let s = backend::dot(real, fake);
    let coeff = lambda * kind.neg_log_one_minus_grad(s);
    backend::axpy(coeff, fake, sgm_grad);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(loss: impl Fn(&[f64], &[f64]) -> f64, grads: &PairGrads, a: &[f64], b: &[f64]) {
        let h = 1e-6;
        for d in 0..a.len() {
            let mut ap = a.to_vec();
            ap[d] += h;
            let mut am = a.to_vec();
            am[d] -= h;
            let fd = (loss(&ap, b) - loss(&am, b)) / (2.0 * h);
            assert!(
                (fd - grads.first[d]).abs() < 1e-5,
                "first[{d}]: fd={fd} an={}",
                grads.first[d]
            );
        }
        for d in 0..b.len() {
            let mut bp = b.to_vec();
            bp[d] += h;
            let mut bm = b.to_vec();
            bm[d] -= h;
            let fd = (loss(a, &bp) - loss(a, &bm)) / (2.0 * h);
            assert!(
                (fd - grads.second[d]).abs() < 1e-5,
                "second[{d}]: fd={fd} an={}",
                grads.second[d]
            );
        }
    }

    #[test]
    fn positive_grads_match_fd_plain_and_constrained() {
        let vi = [0.3, -0.2, 0.5];
        let vj = [-0.1, 0.4, 0.2];
        for kind in [SigmoidKind::Plain, SigmoidKind::paper_constrained()] {
            let g = sgm_positive_grads(kind, &vi, &vj);
            fd_check(|a, b| -kind.log_value(vector::dot(a, b)), &g, &vi, &vj);
        }
    }

    #[test]
    fn negative_grads_match_fd() {
        let vi = [0.3, -0.2, 0.5];
        let vn = [0.6, 0.1, -0.4];
        for kind in [SigmoidKind::Plain, SigmoidKind::paper_constrained()] {
            let g = sgm_negative_grads(kind, &vi, &vn);
            fd_check(|a, b| -kind.log_value(-vector::dot(b, a)), &g, &vi, &vn);
        }
    }

    #[test]
    fn positive_gradient_pulls_pair_together() {
        // Descent on -ln S(v_i . v_j) must increase the inner product.
        let kind = SigmoidKind::Plain;
        let vi = [0.1, 0.1];
        let vj = [0.2, -0.1];
        let g = sgm_positive_grads(kind, &vi, &vj);
        let eta = 0.1;
        let ni: Vec<f64> = vi
            .iter()
            .zip(&g.first)
            .map(|(v, gr)| v - eta * gr)
            .collect();
        let nj: Vec<f64> = vj
            .iter()
            .zip(&g.second)
            .map(|(v, gr)| v - eta * gr)
            .collect();
        assert!(vector::dot(&ni, &nj) > vector::dot(&vi, &vj));
    }

    #[test]
    fn negative_gradient_pushes_pair_apart() {
        let kind = SigmoidKind::Plain;
        let vi = [0.4, 0.1];
        let vn = [0.3, 0.2];
        let g = sgm_negative_grads(kind, &vi, &vn);
        let eta = 0.1;
        let ni: Vec<f64> = vi
            .iter()
            .zip(&g.first)
            .map(|(v, gr)| v - eta * gr)
            .collect();
        let nn: Vec<f64> = vn
            .iter()
            .zip(&g.second)
            .map(|(v, gr)| v - eta * gr)
            .collect();
        assert!(vector::dot(&ni, &nn) < vector::dot(&vi, &vn));
    }

    #[test]
    fn advsgm_augment_adds_fake_verbatim() {
        let mut g = vec![0.1, 0.2];
        advsgm_augment(&mut g, &[1.0, -1.0]);
        assert_eq!(g, vec![1.1, -0.8]);
    }

    #[test]
    fn dpasgm_augment_matches_fd() {
        // Loss side: lambda * -ln(1 - S(v . v')) as a function of v.
        let kind = SigmoidKind::Plain;
        let lambda = 0.7;
        let v = [0.2, -0.3, 0.4];
        let fake = [0.5, 0.5, 0.1];
        let mut g = vec![0.0; 3];
        dpasgm_augment(kind, lambda, &v, &fake, &mut g);
        let loss = |v: &[f64]| -lambda * (1.0 - kind.value(vector::dot(v, &fake))).ln();
        let h = 1e-6;
        for d in 0..3 {
            let mut vp = v.to_vec();
            vp[d] += h;
            let mut vm = v.to_vec();
            vm[d] -= h;
            let fd = (loss(&vp) - loss(&vm)) / (2.0 * h);
            assert!((fd - g[d]).abs() < 1e-5, "[{d}] fd={fd} an={}", g[d]);
        }
    }

    #[test]
    fn theorem6_identity_inverse_weight_cancels_sigmoid() {
        // lambda = 1/S(s) times the plain-sigmoid adversarial gradient
        // coefficient S(s) gives exactly 1 — the fake neighbor passes
        // through unscaled (the heart of Theorem 6).
        let kind = SigmoidKind::Plain;
        let v = [0.2, -0.1];
        let fake = [0.3, 0.4];
        let s = vector::dot(&v, &fake);
        let lambda = kind.inverse_weight(s);
        let mut g1 = vec![0.0; 2];
        dpasgm_augment(kind, lambda, &v, &fake, &mut g1);
        // Must equal plain advsgm_augment of a zero gradient.
        let mut g2 = vec![0.0; 2];
        advsgm_augment(&mut g2, &fake);
        for d in 0..2 {
            assert!(
                (g1[d] - g2[d]).abs() < 1e-12,
                "[{d}] {} vs {}",
                g1[d],
                g2[d]
            );
        }
    }
}
