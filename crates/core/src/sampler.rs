//! Batch provisioning (Algorithm 2 glue).
//!
//! Bundles the graph substrate's edge and negative samplers and exposes the
//! two subsampling probabilities Theorem 7 needs: `gamma_pos = B/|E|` and
//! `gamma_neg = B k/|V|`.
//!
//! Besides the sequential trainer's pull-style methods, the provider can
//! *produce* whole discriminator iterations up front
//! ([`BatchProvider::sample_disc_iteration`], [`BatchProvider::plan_epoch`]).
//! The sharded engine runs this production on a dedicated thread feeding a
//! bounded queue, so Algorithm 2 sampling for iteration `t + 1` overlaps
//! the gradient work of iteration `t` (DESIGN.md §7). Batch *composition*
//! is independent of thread count: it depends only on the producer's RNG
//! stream, which is derived from the seed alone.

use advsgm_graph::sampling::edge_sampler::EdgeBatchSampler;
use advsgm_graph::sampling::negative::{NegativeDistribution, NegativePair, NegativeSampler};
use advsgm_graph::{Edge, Graph, GraphError};
use rand::Rng;

/// One discriminator update's worth of pairs in the trainer's normalised
/// `(input row, output row)` form.
///
/// Positive batches carry randomly oriented edges (so every node trains
/// both vector roles); negative batches carry `(source, sampled negative)`
/// pairs. The flag tells the gradient kernel which loss term applies —
/// the two batch kinds are *separate* mechanism invocations so their
/// amplification rates compose cleanly (Theorem 7).
#[derive(Debug, Clone)]
pub struct DiscBatch {
    /// `(input row, output row)` index pairs.
    pub pairs: Vec<(usize, usize)>,
    /// `true` for a positive (edge) batch, `false` for a negative batch.
    pub positive: bool,
}

/// All batches one epoch of Algorithm 3 consumes, pre-sampled:
/// `disc_iters` (positive, negative) update pairs plus the epoch-loss
/// diagnostic batch.
#[derive(Debug, Clone)]
pub struct EpochBatches {
    /// `2 * disc_iters` update batches in consumption order
    /// (positive, negative, positive, negative, ...).
    pub updates: Vec<DiscBatch>,
    /// Positive edges for the epoch's `|L_Nov|` diagnostic.
    pub loss_positives: Vec<Edge>,
    /// Matching negative pairs for the diagnostic.
    pub loss_negatives: Vec<NegativePair>,
}

/// Produces the paper's positive and negative batches.
#[derive(Debug, Clone)]
pub struct BatchProvider {
    edges: EdgeBatchSampler,
    negatives: NegativeSampler,
    batch: usize,
    k: usize,
}

impl BatchProvider {
    /// Creates a provider for `graph`, clamping the batch size to `|E|`.
    ///
    /// # Errors
    /// Propagates sampler construction failures (empty graph).
    pub fn new(
        graph: &Graph,
        batch: usize,
        k: usize,
        dist: NegativeDistribution,
    ) -> Result<Self, GraphError> {
        let edges = EdgeBatchSampler::new(graph.num_edges())?;
        let negatives = NegativeSampler::new(graph, dist)?;
        Ok(Self {
            edges,
            negatives,
            batch: batch.min(graph.num_edges()),
            k,
        })
    }

    /// Effective batch size `B` (after clamping).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Negative sampling number `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Algorithm 2 line 1: `B` edges uniformly without replacement.
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn positives(
        &mut self,
        graph: &Graph,
        rng: &mut impl Rng,
    ) -> Result<Vec<Edge>, GraphError> {
        self.edges.sample_edges(graph, self.batch, rng)
    }

    /// Algorithm 2 lines 2–8: `B k` negative pairs for the given positives.
    pub fn negatives(&self, positives: &[Edge], rng: &mut impl Rng) -> Vec<NegativePair> {
        self.negatives.sample_for_batch(positives, self.k, rng)
    }

    /// Samples one full discriminator iteration: a randomly oriented
    /// positive batch plus the matching negative batch, in the exact
    /// Algorithm 2/3 order (positives, per-edge orientation coin flips,
    /// then negatives for the oriented sources).
    ///
    /// # Errors
    /// Propagates edge-sampling failures.
    pub fn sample_disc_iteration(
        &mut self,
        graph: &Graph,
        rng: &mut impl Rng,
    ) -> Result<(DiscBatch, DiscBatch), GraphError> {
        let pos = self.positives(graph, rng)?;
        let oriented: Vec<(usize, usize)> = pos
            .iter()
            .map(|e| {
                if rng.gen::<bool>() {
                    (e.u().index(), e.v().index())
                } else {
                    (e.v().index(), e.u().index())
                }
            })
            .collect();
        let sources: Vec<advsgm_graph::NodeId> = oriented
            .iter()
            .map(|&(i, _)| advsgm_graph::NodeId::from_index(i))
            .collect();
        let negs = self.negatives.sample_for_sources(&sources, self.k, rng);
        let neg_pairs: Vec<(usize, usize)> = negs
            .iter()
            .map(|p| (p.source.index(), p.negative.index()))
            .collect();
        Ok((
            DiscBatch {
                pairs: oriented,
                positive: true,
            },
            DiscBatch {
                pairs: neg_pairs,
                positive: false,
            },
        ))
    }

    /// Pre-samples everything one epoch consumes: `disc_iters` update
    /// pairs plus the epoch-loss batch, in consumption order. The sharded
    /// engine's producer thread calls this so sampling overlaps gradient
    /// work; it is equally usable for ahead-of-time batch planning.
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn plan_epoch(
        &mut self,
        graph: &Graph,
        disc_iters: usize,
        rng: &mut impl Rng,
    ) -> Result<EpochBatches, GraphError> {
        let mut updates = Vec::with_capacity(2 * disc_iters);
        for _ in 0..disc_iters {
            let (pos, neg) = self.sample_disc_iteration(graph, rng)?;
            updates.push(pos);
            updates.push(neg);
        }
        let loss_positives = self.positives(graph, rng)?;
        let loss_negatives = self.negatives(&loss_positives, rng);
        Ok(EpochBatches {
            updates,
            loss_positives,
            loss_negatives,
        })
    }

    /// The edge sampler's internal index permutation — mutable sampling
    /// state that a bitwise-exact checkpoint must capture (the negative
    /// sampler is stateless, so this is the provider's *only* hidden
    /// state; see `session::CheckpointState`).
    pub fn edge_permutation(&self) -> &[u32] {
        self.edges.permutation()
    }

    /// Restores the edge sampler's permutation from a checkpoint.
    ///
    /// # Errors
    /// Propagates the sampler's validation (must be a permutation of
    /// `0..|E|`).
    pub fn restore_edge_permutation(&mut self, perm: Vec<u32>) -> Result<(), GraphError> {
        self.edges.restore_permutation(perm)
    }

    /// `gamma_pos = B / |E|`.
    pub fn gamma_pos(&self) -> f64 {
        self.edges.sampling_probability(self.batch)
    }

    /// `gamma_neg = B k / |V|` (the accountant clamps values above 1).
    pub fn gamma_neg(&self) -> f64 {
        self.negatives.sampling_probability(self.batch, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_clamped_to_edge_count() {
        let g = karate_club(); // 78 edges
        let p = BatchProvider::new(&g, 1000, 5, NegativeDistribution::Uniform).unwrap();
        assert_eq!(p.batch_size(), 78);
    }

    #[test]
    fn gammas_match_theorem7() {
        let g = karate_club();
        let p = BatchProvider::new(&g, 10, 5, NegativeDistribution::Uniform).unwrap();
        assert!((p.gamma_pos() - 10.0 / 78.0).abs() < 1e-12);
        assert!((p.gamma_neg() - 50.0 / 34.0).abs() < 1e-12);
    }

    #[test]
    fn disc_iteration_shapes_and_orientation() {
        let g = karate_club();
        let mut p = BatchProvider::new(&g, 12, 4, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let (pos, neg) = p.sample_disc_iteration(&g, &mut rng).unwrap();
        assert!(pos.positive);
        assert!(!neg.positive);
        assert_eq!(pos.pairs.len(), 12);
        assert_eq!(neg.pairs.len(), 48);
        // Every positive pair is a real edge (in one of the two roles).
        for &(i, j) in &pos.pairs {
            assert!(g.has_edge(
                advsgm_graph::NodeId::from_index(i),
                advsgm_graph::NodeId::from_index(j)
            ));
        }
        // Negative sources are exactly the oriented positive starts, k each.
        for (b, chunk) in neg.pairs.chunks(4).enumerate() {
            for &(src, _) in chunk {
                assert_eq!(src, pos.pairs[b].0);
            }
        }
    }

    #[test]
    fn plan_epoch_matches_streaming_production() {
        // Planning an epoch must draw exactly what per-iteration streaming
        // draws: same RNG schedule, same batches.
        let g = karate_club();
        let mut p1 = BatchProvider::new(&g, 8, 3, NegativeDistribution::Uniform).unwrap();
        let mut p2 = p1.clone();
        let mut rng1 = SmallRng::seed_from_u64(77);
        let mut rng2 = SmallRng::seed_from_u64(77);
        let plan = p1.plan_epoch(&g, 4, &mut rng1).unwrap();
        assert_eq!(plan.updates.len(), 8);
        for it in 0..4 {
            let (pos, neg) = p2.sample_disc_iteration(&g, &mut rng2).unwrap();
            assert_eq!(plan.updates[2 * it].pairs, pos.pairs);
            assert_eq!(plan.updates[2 * it + 1].pairs, neg.pairs);
        }
        let loss_pos = p2.positives(&g, &mut rng2).unwrap();
        assert_eq!(plan.loss_positives, loss_pos);
        assert_eq!(plan.loss_negatives, p2.negatives(&loss_pos, &mut rng2));
    }

    #[test]
    fn batches_have_prescribed_sizes() {
        let g = karate_club();
        let mut p = BatchProvider::new(&g, 10, 3, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let pos = p.positives(&g, &mut rng).unwrap();
        assert_eq!(pos.len(), 10);
        let negs = p.negatives(&pos, &mut rng);
        assert_eq!(negs.len(), 30);
    }
}
