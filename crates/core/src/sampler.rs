//! Batch provisioning (Algorithm 2 glue).
//!
//! Bundles the graph substrate's edge and negative samplers and exposes the
//! two subsampling probabilities Theorem 7 needs: `gamma_pos = B/|E|` and
//! `gamma_neg = B k/|V|`.

use advsgm_graph::sampling::edge_sampler::EdgeBatchSampler;
use advsgm_graph::sampling::negative::{NegativeDistribution, NegativePair, NegativeSampler};
use advsgm_graph::{Edge, Graph, GraphError};
use rand::Rng;

/// Produces the paper's positive and negative batches.
#[derive(Debug, Clone)]
pub struct BatchProvider {
    edges: EdgeBatchSampler,
    negatives: NegativeSampler,
    batch: usize,
    k: usize,
}

impl BatchProvider {
    /// Creates a provider for `graph`, clamping the batch size to `|E|`.
    ///
    /// # Errors
    /// Propagates sampler construction failures (empty graph).
    pub fn new(
        graph: &Graph,
        batch: usize,
        k: usize,
        dist: NegativeDistribution,
    ) -> Result<Self, GraphError> {
        let edges = EdgeBatchSampler::new(graph.num_edges())?;
        let negatives = NegativeSampler::new(graph, dist)?;
        Ok(Self {
            edges,
            negatives,
            batch: batch.min(graph.num_edges()),
            k,
        })
    }

    /// Effective batch size `B` (after clamping).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Negative sampling number `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Algorithm 2 line 1: `B` edges uniformly without replacement.
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn positives(
        &mut self,
        graph: &Graph,
        rng: &mut impl Rng,
    ) -> Result<Vec<Edge>, GraphError> {
        self.edges.sample_edges(graph, self.batch, rng)
    }

    /// Algorithm 2 lines 2–8: `B k` negative pairs for the given positives.
    pub fn negatives(&self, positives: &[Edge], rng: &mut impl Rng) -> Vec<NegativePair> {
        self.negatives.sample_for_batch(positives, self.k, rng)
    }

    /// Negative pairs for explicit (already oriented) source nodes.
    pub fn negatives_for_sources(
        &self,
        sources: &[advsgm_graph::NodeId],
        rng: &mut impl Rng,
    ) -> Vec<NegativePair> {
        self.negatives.sample_for_sources(sources, self.k, rng)
    }

    /// `gamma_pos = B / |E|`.
    pub fn gamma_pos(&self) -> f64 {
        self.edges.sampling_probability(self.batch)
    }

    /// `gamma_neg = B k / |V|` (the accountant clamps values above 1).
    pub fn gamma_neg(&self) -> f64 {
        self.negatives.sampling_probability(self.batch, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_clamped_to_edge_count() {
        let g = karate_club(); // 78 edges
        let p = BatchProvider::new(&g, 1000, 5, NegativeDistribution::Uniform).unwrap();
        assert_eq!(p.batch_size(), 78);
    }

    #[test]
    fn gammas_match_theorem7() {
        let g = karate_club();
        let p = BatchProvider::new(&g, 10, 5, NegativeDistribution::Uniform).unwrap();
        assert!((p.gamma_pos() - 10.0 / 78.0).abs() < 1e-12);
        assert!((p.gamma_neg() - 50.0 / 34.0).abs() < 1e-12);
    }

    #[test]
    fn batches_have_prescribed_sizes() {
        let g = karate_club();
        let mut p = BatchProvider::new(&g, 10, 3, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let pos = p.positives(&g, &mut rng).unwrap();
        assert_eq!(pos.len(), 10);
        let negs = p.negatives(&pos, &mut rng);
        assert_eq!(negs.len(), 30);
    }
}
