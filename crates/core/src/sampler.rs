//! Batch provisioning (Algorithm 2 glue).
//!
//! Bundles the graph substrate's edge and negative samplers and exposes the
//! two subsampling probabilities Theorem 7 needs: `gamma_pos = B/|E|` and
//! `gamma_neg = B k/|V|`.
//!
//! Besides the sequential trainer's pull-style methods, the provider can
//! *produce* whole discriminator iterations up front
//! ([`BatchProvider::sample_disc_iteration`], [`BatchProvider::plan_epoch`]).
//! The sharded engine runs this production on a dedicated thread feeding a
//! bounded queue, so Algorithm 2 sampling for iteration `t + 1` overlaps
//! the gradient work of iteration `t` (DESIGN.md §7). Batch *composition*
//! is independent of thread count: it depends only on the producer's RNG
//! stream, which is derived from the seed alone.

use advsgm_graph::sampling::edge_sampler::EdgeBatchSampler;
use advsgm_graph::sampling::negative::{NegativeDistribution, NegativePair, NegativeSampler};
use advsgm_graph::{Edge, Graph, GraphError};
use rand::Rng;

use crate::variants::ModelVariant;
use crate::weighting::{precompute_edge_weights, PairWeighting};

/// One discriminator update's worth of pairs in the trainer's normalised
/// `(input row, output row)` form.
///
/// Positive batches carry randomly oriented edges (so every node trains
/// both vector roles); negative batches carry `(source, sampled negative)`
/// pairs. The flag tells the gradient kernel which loss term applies —
/// the two batch kinds are *separate* mechanism invocations so their
/// amplification rates compose cleanly (Theorem 7).
#[derive(Debug, Clone)]
pub struct DiscBatch {
    /// `(input row, output row)` index pairs.
    pub pairs: Vec<(usize, usize)>,
    /// `true` for a positive (edge) batch, `false` for a negative batch.
    pub positive: bool,
    /// Per-pair foe flags, aligned with `pairs`. Empty means "all friend"
    /// — the legacy transport for sign-blind variants and negative
    /// batches, so sign-blind training builds byte-identical batches.
    pub signs: Vec<bool>,
    /// Per-pair gradient weights in `(0, 1]`, aligned with `pairs`. Empty
    /// means "all 1" (uniform weighting — no scaling is ever applied).
    pub weights: Vec<f64>,
}

impl DiscBatch {
    /// Whether pair `idx` is a foe (antagonistic) pair; `false` for
    /// sign-blind batches and sampled negatives.
    #[inline]
    pub fn foe(&self, idx: usize) -> bool {
        self.signs.get(idx).copied().unwrap_or(false)
    }

    /// The gradient weight of pair `idx`; `1.0` under uniform weighting.
    #[inline]
    pub fn weight(&self, idx: usize) -> f64 {
        self.weights.get(idx).copied().unwrap_or(1.0)
    }
}

/// All batches one epoch of Algorithm 3 consumes, pre-sampled:
/// `disc_iters` (positive, negative) update pairs plus the epoch-loss
/// diagnostic batch.
#[derive(Debug, Clone)]
pub struct EpochBatches {
    /// `2 * disc_iters` update batches in consumption order
    /// (positive, negative, positive, negative, ...).
    pub updates: Vec<DiscBatch>,
    /// Positive edges for the epoch's `|L_Nov|` diagnostic.
    pub loss_positives: Vec<Edge>,
    /// Foe flags for the diagnostic positives (empty = all friend).
    pub loss_signs: Vec<bool>,
    /// Matching negative pairs for the diagnostic.
    pub loss_negatives: Vec<NegativePair>,
}

/// Produces the paper's positive and negative batches.
#[derive(Debug, Clone)]
pub struct BatchProvider {
    edges: EdgeBatchSampler,
    negatives: NegativeSampler,
    batch: usize,
    k: usize,
    /// Per-edge foe flags, attached only for sign-aware variants on a
    /// signed graph (indexable by the sampler's edge indices).
    signs: Option<Vec<bool>>,
    /// Precomputed per-edge pair weights, attached only under
    /// [`PairWeighting::StructurePreference`].
    edge_weights: Option<Vec<f64>>,
}

impl BatchProvider {
    /// Creates a provider for `graph`, clamping the batch size to `|E|`.
    /// Batches carry no sign or weight channels (the legacy, sign-blind
    /// transport); use [`BatchProvider::new_for_variant`] to attach them.
    ///
    /// # Errors
    /// Propagates sampler construction failures (empty graph).
    pub fn new(
        graph: &Graph,
        batch: usize,
        k: usize,
        dist: NegativeDistribution,
    ) -> Result<Self, GraphError> {
        let edges = EdgeBatchSampler::new(graph.num_edges())?;
        let negatives = NegativeSampler::new(graph, dist)?;
        Ok(Self {
            edges,
            negatives,
            batch: batch.min(graph.num_edges()),
            k,
            signs: None,
            edge_weights: None,
        })
    }

    /// Creates a provider whose batches carry exactly the side channels
    /// `variant` consumes: foe flags for sign-aware variants on a signed
    /// graph (an unsigned graph degrades gracefully to all-friend), and
    /// structure-preference weights under
    /// [`PairWeighting::StructurePreference`]. Every channel lookup is by
    /// sampled edge index and draws no randomness, so batch *composition*
    /// is identical to [`BatchProvider::new`] at the same seed.
    ///
    /// # Errors
    /// Propagates sampler construction failures (empty graph).
    pub fn new_for_variant(
        graph: &Graph,
        batch: usize,
        k: usize,
        dist: NegativeDistribution,
        variant: ModelVariant,
    ) -> Result<Self, GraphError> {
        let mut p = Self::new(graph, batch, k, dist)?;
        if variant.is_sign_aware() {
            p.signs = graph.signs().map(<[bool]>::to_vec);
        }
        if variant.pair_weighting() == PairWeighting::StructurePreference {
            p.edge_weights = Some(precompute_edge_weights(graph));
        }
        Ok(p)
    }

    /// Effective batch size `B` (after clamping).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Negative sampling number `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Algorithm 2 line 1: `B` edges uniformly without replacement.
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn positives(
        &mut self,
        graph: &Graph,
        rng: &mut impl Rng,
    ) -> Result<Vec<Edge>, GraphError> {
        self.edges.sample_edges(graph, self.batch, rng)
    }

    /// Algorithm 2 lines 2–8: `B k` negative pairs for the given positives.
    pub fn negatives(&self, positives: &[Edge], rng: &mut impl Rng) -> Vec<NegativePair> {
        self.negatives.sample_for_batch(positives, self.k, rng)
    }

    /// [`BatchProvider::positives`] plus the batch's foe flags (empty when
    /// the provider carries no sign channel). Identical RNG draws: the
    /// sign lookup is by sampled edge index and consumes no randomness.
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn positives_with_signs(
        &mut self,
        graph: &Graph,
        rng: &mut impl Rng,
    ) -> Result<(Vec<Edge>, Vec<bool>), GraphError> {
        let idx = self.edges.sample_indices_for(graph, self.batch, rng)?;
        let pos = idx.iter().map(|&i| graph.edges()[i as usize]).collect();
        let signs = match &self.signs {
            Some(s) => idx.iter().map(|&i| s[i as usize]).collect(),
            None => Vec::new(),
        };
        Ok((pos, signs))
    }

    /// Samples one full discriminator iteration: a randomly oriented
    /// positive batch plus the matching negative batch, in the exact
    /// Algorithm 2/3 order (positives, per-edge orientation coin flips,
    /// then negatives for the oriented sources).
    ///
    /// # Errors
    /// Propagates edge-sampling failures.
    pub fn sample_disc_iteration(
        &mut self,
        graph: &Graph,
        rng: &mut impl Rng,
    ) -> Result<(DiscBatch, DiscBatch), GraphError> {
        // Edge *indices* first (the exact draws of `positives`), so the
        // sign/weight channels can be looked up RNG-free per index.
        let idx: Vec<u32> = self
            .edges
            .sample_indices_for(graph, self.batch, rng)?
            .to_vec();
        let oriented: Vec<(usize, usize)> = idx
            .iter()
            .map(|&i| {
                let e = graph.edges()[i as usize];
                if rng.gen::<bool>() {
                    (e.u().index(), e.v().index())
                } else {
                    (e.v().index(), e.u().index())
                }
            })
            .collect();
        let signs = match &self.signs {
            Some(s) => idx.iter().map(|&i| s[i as usize]).collect(),
            None => Vec::new(),
        };
        let weights = match &self.edge_weights {
            Some(w) => idx.iter().map(|&i| w[i as usize]).collect(),
            None => Vec::new(),
        };
        let sources: Vec<advsgm_graph::NodeId> = oriented
            .iter()
            .map(|&(i, _)| advsgm_graph::NodeId::from_index(i))
            .collect();
        let negs = self.negatives.sample_for_sources(&sources, self.k, rng);
        let neg_pairs: Vec<(usize, usize)> = negs
            .iter()
            .map(|p| (p.source.index(), p.negative.index()))
            .collect();
        Ok((
            DiscBatch {
                pairs: oriented,
                positive: true,
                signs,
                weights,
            },
            // Sampled negatives are always friend-polarity, unit-weight
            // repel terms, whatever the variant.
            DiscBatch {
                pairs: neg_pairs,
                positive: false,
                signs: Vec::new(),
                weights: Vec::new(),
            },
        ))
    }

    /// Pre-samples everything one epoch consumes: `disc_iters` update
    /// pairs plus the epoch-loss batch, in consumption order. The sharded
    /// engine's producer thread calls this so sampling overlaps gradient
    /// work; it is equally usable for ahead-of-time batch planning.
    ///
    /// # Errors
    /// Propagates sampling failures.
    pub fn plan_epoch(
        &mut self,
        graph: &Graph,
        disc_iters: usize,
        rng: &mut impl Rng,
    ) -> Result<EpochBatches, GraphError> {
        let mut updates = Vec::with_capacity(2 * disc_iters);
        for _ in 0..disc_iters {
            let (pos, neg) = self.sample_disc_iteration(graph, rng)?;
            updates.push(pos);
            updates.push(neg);
        }
        let (loss_positives, loss_signs) = self.positives_with_signs(graph, rng)?;
        let loss_negatives = self.negatives(&loss_positives, rng);
        Ok(EpochBatches {
            updates,
            loss_positives,
            loss_signs,
            loss_negatives,
        })
    }

    /// The edge sampler's internal index permutation — mutable sampling
    /// state that a bitwise-exact checkpoint must capture (the negative
    /// sampler is stateless, so this is the provider's *only* hidden
    /// state; see `session::CheckpointState`).
    pub fn edge_permutation(&self) -> &[u32] {
        self.edges.permutation()
    }

    /// Restores the edge sampler's permutation from a checkpoint.
    ///
    /// # Errors
    /// Propagates the sampler's validation (must be a permutation of
    /// `0..|E|`).
    pub fn restore_edge_permutation(&mut self, perm: Vec<u32>) -> Result<(), GraphError> {
        self.edges.restore_permutation(perm)
    }

    /// `gamma_pos = B / |E|`.
    pub fn gamma_pos(&self) -> f64 {
        self.edges.sampling_probability(self.batch)
    }

    /// `gamma_neg = B k / |V|` (the accountant clamps values above 1).
    pub fn gamma_neg(&self) -> f64 {
        self.negatives.sampling_probability(self.batch, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_clamped_to_edge_count() {
        let g = karate_club(); // 78 edges
        let p = BatchProvider::new(&g, 1000, 5, NegativeDistribution::Uniform).unwrap();
        assert_eq!(p.batch_size(), 78);
    }

    #[test]
    fn gammas_match_theorem7() {
        let g = karate_club();
        let p = BatchProvider::new(&g, 10, 5, NegativeDistribution::Uniform).unwrap();
        assert!((p.gamma_pos() - 10.0 / 78.0).abs() < 1e-12);
        assert!((p.gamma_neg() - 50.0 / 34.0).abs() < 1e-12);
    }

    #[test]
    fn disc_iteration_shapes_and_orientation() {
        let g = karate_club();
        let mut p = BatchProvider::new(&g, 12, 4, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let (pos, neg) = p.sample_disc_iteration(&g, &mut rng).unwrap();
        assert!(pos.positive);
        assert!(!neg.positive);
        assert_eq!(pos.pairs.len(), 12);
        assert_eq!(neg.pairs.len(), 48);
        // Every positive pair is a real edge (in one of the two roles).
        for &(i, j) in &pos.pairs {
            assert!(g.has_edge(
                advsgm_graph::NodeId::from_index(i),
                advsgm_graph::NodeId::from_index(j)
            ));
        }
        // Negative sources are exactly the oriented positive starts, k each.
        for (b, chunk) in neg.pairs.chunks(4).enumerate() {
            for &(src, _) in chunk {
                assert_eq!(src, pos.pairs[b].0);
            }
        }
    }

    #[test]
    fn plan_epoch_matches_streaming_production() {
        // Planning an epoch must draw exactly what per-iteration streaming
        // draws: same RNG schedule, same batches.
        let g = karate_club();
        let mut p1 = BatchProvider::new(&g, 8, 3, NegativeDistribution::Uniform).unwrap();
        let mut p2 = p1.clone();
        let mut rng1 = SmallRng::seed_from_u64(77);
        let mut rng2 = SmallRng::seed_from_u64(77);
        let plan = p1.plan_epoch(&g, 4, &mut rng1).unwrap();
        assert_eq!(plan.updates.len(), 8);
        for it in 0..4 {
            let (pos, neg) = p2.sample_disc_iteration(&g, &mut rng2).unwrap();
            assert_eq!(plan.updates[2 * it].pairs, pos.pairs);
            assert_eq!(plan.updates[2 * it + 1].pairs, neg.pairs);
        }
        let loss_pos = p2.positives(&g, &mut rng2).unwrap();
        assert_eq!(plan.loss_positives, loss_pos);
        assert_eq!(plan.loss_negatives, p2.negatives(&loss_pos, &mut rng2));
    }

    #[test]
    fn batches_have_prescribed_sizes() {
        let g = karate_club();
        let mut p = BatchProvider::new(&g, 10, 3, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let pos = p.positives(&g, &mut rng).unwrap();
        assert_eq!(pos.len(), 10);
        let negs = p.negatives(&pos, &mut rng);
        assert_eq!(negs.len(), 30);
    }

    /// Karate club with a deterministic polarity stamp (every third edge
    /// a foe), for exercising the sign channel.
    fn signed_karate() -> Graph {
        let g = karate_club();
        let signs: Vec<bool> = (0..g.num_edges()).map(|i| i % 3 == 0).collect();
        Graph::from_parts_signed(g.num_nodes(), g.edges().to_vec(), Some(signs), None)
    }

    #[test]
    fn sign_channel_attaches_only_for_sign_aware_variants() {
        let g = signed_karate();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut aware = BatchProvider::new_for_variant(
            &g,
            12,
            3,
            NegativeDistribution::Uniform,
            ModelVariant::SignedAdvSgm,
        )
        .unwrap();
        let (pos, _) = aware.sample_disc_iteration(&g, &mut rng).unwrap();
        assert_eq!(pos.signs.len(), pos.pairs.len(), "signs aligned");
        assert!(pos.signs.iter().any(|&s| s), "foe flags actually surface");
        assert!(pos.signs.iter().any(|&s| !s), "friend flags too");

        // Sign-blind variants on the same signed graph: legacy transport.
        for v in [
            ModelVariant::AdvSgm,
            ModelVariant::Sgm,
            ModelVariant::SpAdvSgm,
        ] {
            let mut blind =
                BatchProvider::new_for_variant(&g, 12, 3, NegativeDistribution::Uniform, v)
                    .unwrap();
            let mut rng = SmallRng::seed_from_u64(4);
            let (pos, neg) = blind.sample_disc_iteration(&g, &mut rng).unwrap();
            assert!(pos.signs.is_empty(), "{v}: no sign channel");
            assert!(neg.signs.is_empty());
            assert!(!pos.foe(0), "empty channel reads as all-friend");
        }
    }

    #[test]
    fn side_channels_never_perturb_the_draw_sequence() {
        // The seam's bitwise contract: attaching signs and/or weights
        // consumes no randomness, so batch composition is identical to the
        // legacy provider at the same seed — across a whole epoch plan.
        let g = signed_karate();
        let legacy_batches = {
            let mut p = BatchProvider::new(&g, 8, 3, NegativeDistribution::Uniform).unwrap();
            p.plan_epoch(&g, 4, &mut SmallRng::seed_from_u64(55))
                .unwrap()
        };
        for v in [ModelVariant::SignedAdvSgm, ModelVariant::SpAdvSgm] {
            let mut p =
                BatchProvider::new_for_variant(&g, 8, 3, NegativeDistribution::Uniform, v).unwrap();
            let plan = p
                .plan_epoch(&g, 4, &mut SmallRng::seed_from_u64(55))
                .unwrap();
            for (a, b) in plan.updates.iter().zip(&legacy_batches.updates) {
                assert_eq!(a.pairs, b.pairs, "{v}: identical batch composition");
                assert_eq!(a.positive, b.positive);
            }
            assert_eq!(plan.loss_positives, legacy_batches.loss_positives, "{v}");
            assert_eq!(plan.loss_negatives, legacy_batches.loss_negatives, "{v}");
        }
    }

    #[test]
    fn weights_attach_only_under_structure_preference() {
        let g = signed_karate();
        let mut sp = BatchProvider::new_for_variant(
            &g,
            10,
            2,
            NegativeDistribution::Uniform,
            ModelVariant::SpAdvSgm,
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let (pos, neg) = sp.sample_disc_iteration(&g, &mut rng).unwrap();
        assert_eq!(pos.weights.len(), pos.pairs.len());
        assert!(
            pos.weights.iter().all(|&w| w > 0.0 && w <= 1.0),
            "weights stay in (0, 1] so clipped sensitivity holds"
        );
        assert!(neg.weights.is_empty(), "negative batches stay uniform");
        assert_eq!(neg.weight(0), 1.0);

        let mut uni = BatchProvider::new_for_variant(
            &g,
            10,
            2,
            NegativeDistribution::Uniform,
            ModelVariant::AdvSgm,
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let (pos, _) = uni.sample_disc_iteration(&g, &mut rng).unwrap();
        assert!(pos.weights.is_empty(), "uniform weighting sends no channel");
        assert_eq!(pos.weight(0), 1.0);
    }

    #[test]
    fn unsigned_graph_degrades_to_all_friend() {
        let g = karate_club();
        let mut p = BatchProvider::new_for_variant(
            &g,
            8,
            2,
            NegativeDistribution::Uniform,
            ModelVariant::SignedAdvSgm,
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let (pos, _) = p.sample_disc_iteration(&g, &mut rng).unwrap();
        assert!(pos.signs.is_empty());
        assert!((0..pos.pairs.len()).all(|i| !pos.foe(i)));
    }

    #[test]
    fn positives_with_signs_reports_the_graph_polarity() {
        let g = signed_karate();
        let mut p = BatchProvider::new_for_variant(
            &g,
            14,
            2,
            NegativeDistribution::Uniform,
            ModelVariant::SignedAdvSgm,
        )
        .unwrap();
        // Same draws as the plain `positives` path...
        let pos_plain = p
            .clone()
            .positives(&g, &mut SmallRng::seed_from_u64(31))
            .unwrap();
        let (pos, signs) = p
            .positives_with_signs(&g, &mut SmallRng::seed_from_u64(31))
            .unwrap();
        assert_eq!(pos, pos_plain);
        // ...and every flag agrees with the graph's own polarity.
        for (e, &foe) in pos.iter().zip(&signs) {
            let idx = g.edges().iter().position(|x| x == e).unwrap();
            assert_eq!(g.edge_is_foe(idx), foe);
        }
    }
}
