//! Loss evaluation (Eqs. 2, 13, 16/24, 17) and the Fig. 2 metric.
//!
//! Training never materialises these losses (the gradients in [`crate::grad`]
//! are closed-form), but Fig. 2's weight-setting study and the trainer's
//! per-epoch diagnostics evaluate `|L^D_Nov|` directly.

use advsgm_graph::sampling::negative::NegativePair;
use advsgm_graph::Edge;
use advsgm_linalg::rng::gaussian_vec;
use advsgm_linalg::vector;
use rand::Rng;

use crate::model::{Embeddings, GeneratorPair};
use crate::sigmoid::SigmoidKind;
use crate::weighting::WeightMode;

/// `-ln S(v_i . v_j)` — the positive skip-gram term as a minimisation.
pub fn sgm_positive_loss(kind: SigmoidKind, vi: &[f64], vj: &[f64]) -> f64 {
    -kind.log_value(vector::dot(vi, vj))
}

/// `-ln S(-(v_n . v_i))` — one negative-sample term.
pub fn sgm_negative_loss(kind: SigmoidKind, vi: &[f64], vn: &[f64]) -> f64 {
    -kind.log_value(-vector::dot(vn, vi))
}

/// `-ln(1 - S(arg))` — one adversarial discriminator term (Eq. 13).
pub fn adversarial_term_loss(kind: SigmoidKind, arg: f64) -> f64 {
    let s = kind.value(arg);
    -(1.0 - s).ln()
}

/// `ln(1 - S(arg))` — one generator term (Eq. 17; minimised).
pub fn generator_term_loss(kind: SigmoidKind, arg: f64) -> f64 {
    (1.0 - kind.value(arg)).ln()
}

/// The dot-product arguments one positive pair contributes to `L_Nov`:
/// the skip-gram score plus the two noisy adversarial arguments (Eq. 13).
///
/// Splitting the evaluation into these pure scalars and the order-fixed
/// fold in [`fold_novel_loss`] is what lets the out-of-core engine
/// compute them per bucket pair and still reproduce the sequential
/// engine's floating-point result bit for bit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PositiveTerms {
    /// `v_i . v_j`.
    pub dot_ij: f64,
    /// `v_i . fake_j + n1 . v_i`.
    pub arg1: f64,
    /// `fake_i . v_j + n2 . v_j`.
    pub arg2: f64,
    /// Whether the pair is a foe edge: its skip-gram term is the repelling
    /// `-ln S(-dot)` instead of `-ln S(dot)` (arXiv 2512.00307 §IV).
    pub foe: bool,
}

/// Computes one positive pair's [`PositiveTerms`] — each scalar with the
/// exact operation order the in-place evaluation uses.
pub(crate) fn positive_terms(
    vi: &[f64],
    vj: &[f64],
    fake_j: &[f64],
    fake_i: &[f64],
    n1: &[f64],
    n2: &[f64],
    foe: bool,
) -> PositiveTerms {
    PositiveTerms {
        dot_ij: vector::dot(vi, vj),
        arg1: vector::dot(vi, fake_j) + vector::dot(n1, vi),
        arg2: vector::dot(fake_i, vj) + vector::dot(n2, vj),
        foe,
    }
}

/// The dot product one negative sample contributes (`v_n . v_i`, operand
/// order matching [`sgm_negative_loss`]).
pub(crate) fn negative_dot(vi: &[f64], vn: &[f64]) -> f64 {
    vector::dot(vn, vi)
}

/// Folds per-pair terms into the batch-mean `L_Nov` in the canonical
/// accumulation order: skip-gram and adversarial sums are kept separate,
/// positives are folded first (in slice order), then negatives, then
/// `(sgm + adv) / |positives|`.
pub(crate) fn fold_novel_loss(
    kind: SigmoidKind,
    mode: WeightMode,
    positives: &[PositiveTerms],
    negative_dots: &[f64],
) -> f64 {
    assert!(!positives.is_empty(), "need at least one positive pair");
    let mut sgm = 0.0;
    let mut adv = 0.0;
    for t in positives {
        // Foe pairs contribute the repelling skip-gram term; the friend
        // branch is the exact pre-sign expression (bitwise-identical for
        // sign-blind batches, whose terms are all friend).
        sgm += if t.foe {
            -kind.log_value(-t.dot_ij)
        } else {
            -kind.log_value(t.dot_ij)
        };
        adv += mode.lambda(kind, t.arg1) * adversarial_term_loss(kind, t.arg1);
        adv += mode.lambda(kind, t.arg2) * adversarial_term_loss(kind, t.arg2);
    }
    for &d in negative_dots {
        sgm += -kind.log_value(-d);
    }
    (sgm + adv) / positives.len() as f64
}

/// Evaluates the novel discriminator loss `L_Nov` (Eq. 24) on one batch:
/// the skip-gram part over `positives`/`negatives` plus the weighted
/// adversarial parts with fresh fake neighbors and noise draws
/// (`noise_std = C * sigma`; pass 0 for the no-DP configuration).
///
/// `signs` carries the positives' foe flags, aligned by index; empty
/// means "all friend" (the sign-blind evaluation, bitwise-identical to
/// the pre-sign loss).
///
/// Returns the batch-mean loss; Fig. 2 reports its absolute value.
#[allow(clippy::too_many_arguments)]
pub fn novel_loss_batch(
    kind: SigmoidKind,
    mode: WeightMode,
    emb: &Embeddings,
    gens: &GeneratorPair,
    positives: &[Edge],
    signs: &[bool],
    negatives: &[NegativePair],
    noise_std: f64,
    rng: &mut impl Rng,
) -> f64 {
    assert!(!positives.is_empty(), "need at least one positive pair");
    let r = emb.dim();
    // Per-batch noise vectors, as in the trainer (zero when noise_std = 0).
    let n1 = gaussian_vec(rng, noise_std.max(0.0), r);
    let n2 = gaussian_vec(rng, noise_std.max(0.0), r);
    let mut terms = Vec::with_capacity(positives.len());
    for (idx, e) in positives.iter().enumerate() {
        let vi = emb.input(e.u().index());
        let vj = emb.output(e.v().index());
        // Adversarial terms with fresh fakes (Eq. 13).
        let fake_j = gens.for_i.generate(e.v().index(), rng).v;
        let fake_i = gens.for_j.generate(e.u().index(), rng).v;
        let foe = signs.get(idx).copied().unwrap_or(false);
        terms.push(positive_terms(vi, vj, &fake_j, &fake_i, &n1, &n2, foe));
    }
    let neg_dots: Vec<f64> = negatives
        .iter()
        .map(|p| negative_dot(emb.input(p.source.index()), emb.output(p.negative.index())))
        .collect();
    fold_novel_loss(kind, mode, &terms, &neg_dots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::NodeId;
    use advsgm_linalg::rng::seeded;

    fn fixture() -> (Embeddings, GeneratorPair) {
        let mut rng = seeded(7);
        (
            Embeddings::init(10, 8, &mut rng),
            GeneratorPair::new(10, 8, &mut rng),
        )
    }

    #[test]
    fn positive_loss_decreases_with_alignment() {
        let kind = SigmoidKind::Plain;
        let a = [1.0, 0.0];
        let b = [1.0, 0.0];
        let c = [-1.0, 0.0];
        assert!(sgm_positive_loss(kind, &a, &b) < sgm_positive_loss(kind, &a, &c));
    }

    #[test]
    fn negative_loss_decreases_with_separation() {
        let kind = SigmoidKind::Plain;
        let a = [1.0, 0.0];
        let near = [1.0, 0.0];
        let far = [-1.0, 0.0];
        assert!(sgm_negative_loss(kind, &a, &far) < sgm_negative_loss(kind, &a, &near));
    }

    #[test]
    fn adversarial_term_nonnegative() {
        for kind in [SigmoidKind::Plain, SigmoidKind::paper_constrained()] {
            for &x in &[-5.0, 0.0, 5.0] {
                assert!(adversarial_term_loss(kind, x) >= 0.0);
            }
        }
    }

    #[test]
    fn generator_loss_is_negated_adversarial() {
        let kind = SigmoidKind::Plain;
        for &x in &[-2.0, 0.0, 2.0] {
            let g = generator_term_loss(kind, x);
            let d = adversarial_term_loss(kind, x);
            assert!((g + d).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_loss_finite_and_deterministic_under_seed() {
        let (emb, gens) = fixture();
        let kind = SigmoidKind::paper_constrained();
        let pos = vec![Edge::from_raw(0, 1), Edge::from_raw(2, 3)];
        let negs = vec![NegativePair {
            source: NodeId(0),
            negative: NodeId(5),
        }];
        let l1 = novel_loss_batch(
            kind,
            WeightMode::InverseS,
            &emb,
            &gens,
            &pos,
            &[],
            &negs,
            5.0,
            &mut seeded(11),
        );
        let l2 = novel_loss_batch(
            kind,
            WeightMode::InverseS,
            &emb,
            &gens,
            &pos,
            &[],
            &negs,
            5.0,
            &mut seeded(11),
        );
        assert!(l1.is_finite());
        assert_eq!(l1, l2);
    }

    #[test]
    fn weight_modes_give_different_losses() {
        let (emb, gens) = fixture();
        let kind = SigmoidKind::paper_constrained();
        let pos = vec![Edge::from_raw(0, 1)];
        let negs = vec![];
        let l_half = novel_loss_batch(
            kind,
            WeightMode::Fixed(0.5),
            &emb,
            &gens,
            &pos,
            &[],
            &negs,
            0.0,
            &mut seeded(3),
        );
        let l_one = novel_loss_batch(
            kind,
            WeightMode::Fixed(1.0),
            &emb,
            &gens,
            &pos,
            &[],
            &negs,
            0.0,
            &mut seeded(3),
        );
        let l_inv = novel_loss_batch(
            kind,
            WeightMode::InverseS,
            &emb,
            &gens,
            &pos,
            &[],
            &negs,
            0.0,
            &mut seeded(3),
        );
        assert!(l_half < l_one, "larger lambda must weigh adversarial more");
        assert!(l_one < l_inv, "1/S exceeds 1 for the constrained sigmoid");
    }

    #[test]
    fn foe_flag_flips_the_skipgram_term() {
        let (emb, gens) = fixture();
        let kind = SigmoidKind::paper_constrained();
        let pos = vec![Edge::from_raw(0, 1)];
        let friend = novel_loss_batch(
            kind,
            WeightMode::InverseS,
            &emb,
            &gens,
            &pos,
            &[false],
            &[],
            0.0,
            &mut seeded(5),
        );
        let foe = novel_loss_batch(
            kind,
            WeightMode::InverseS,
            &emb,
            &gens,
            &pos,
            &[true],
            &[],
            0.0,
            &mut seeded(5),
        );
        // Same draws, only the skip-gram term differs: friend uses
        // -ln S(dot), foe uses -ln S(-dot).
        let dot = vector::dot(emb.input(0), emb.output(1));
        let expected_delta = -kind.log_value(-dot) - -kind.log_value(dot);
        assert!((foe - friend - expected_delta).abs() < 1e-12);
        // An explicit all-friend slice matches the empty (sign-blind) one.
        let blind = novel_loss_batch(
            kind,
            WeightMode::InverseS,
            &emb,
            &gens,
            &pos,
            &[],
            &[],
            0.0,
            &mut seeded(5),
        );
        assert_eq!(friend, blind);
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn empty_batch_rejected() {
        let (emb, gens) = fixture();
        novel_loss_batch(
            SigmoidKind::Plain,
            WeightMode::InverseS,
            &emb,
            &gens,
            &[],
            &[],
            &[],
            0.0,
            &mut seeded(1),
        );
    }
}
