//! The out-of-core training facade over the session layer (DESIGN.md §14).
//!
//! [`PartitionedTrainer`] runs the same Algorithm 3 as [`crate::Trainer`]
//! — literally the same loop, `session::run_schedule` — but executes each
//! step through the partitioned engine
//! (`session::partitioned::PartitionedEngine`): the embedding matrices
//! are split into `P` node buckets that swap through a two-slot pool
//! (one `W_in` bucket and one `W_out` bucket resident at a time, the
//! rest spilled to disk), sized for graphs whose embeddings do not fit
//! in RAM.
//!
//! # Determinism contract
//!
//! * **Bitwise identity with the sequential trainer**: every step replays
//!   the sequential engine's RNG draws and floating-point accumulation
//!   order (the engine's module docs hold the phase-by-phase argument),
//!   so at a fixed seed the released embeddings, per-epoch losses, and
//!   privacy spend are bit-for-bit equal to [`crate::Trainer`]'s — for
//!   every partition count `P >= 1` and every thread count
//!   (`tests/ooc_equivalence.rs`).
//! * **Residency bound**: at most two embedding partitions are in memory
//!   at any point during stepping, observable as
//!   [`SlotPoolStats::high_water`] `<= 2`. (Checkpoint capture and final
//!   outcome assembly materialise the full matrices by necessity; the
//!   next step drops that copy again.)
//! * **Checkpoint/resume is bitwise-exact and `P`-free**: the partition
//!   count shapes residency, never the trajectory, so a checkpoint
//!   captured at one `P` resumes identically under any other.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use advsgm_graph::Graph;
use advsgm_linalg::rng::rng_from_state;

use crate::config::AdvSgmConfig;
use crate::error::CoreError;
use crate::session::partitioned::PartitionedEngine;
use crate::session::{
    run_schedule, CheckpointState, Engine, EngineKind, NoHooks, SessionCore, TrainHooks,
};
use crate::trainer::TrainOutcome;

/// Observability counters for the partitioned engine's two-slot pool.
///
/// Obtained *before* training consumes the trainer (the handle is
/// `Arc`-shared with the engine), so tests and callers can assert the
/// residency bound after the run:
/// [`SlotPoolStats::high_water`] never exceeds 2 — one `W_in` partition
/// plus one `W_out` partition.
#[derive(Debug, Default)]
pub struct SlotPoolStats {
    pub(crate) resident: AtomicUsize,
    pub(crate) high_water: AtomicUsize,
    pub(crate) loads: AtomicUsize,
    pub(crate) evictions: AtomicUsize,
}

impl SlotPoolStats {
    /// Partitions currently resident in the pool (0, 1, or 2).
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// The maximum number of simultaneously resident partitions observed
    /// so far — the memory bound; `<= 2` by construction.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Partition loads from the spill store (including the first load of
    /// each bucket).
    pub fn loads(&self) -> usize {
        self.loads.load(Ordering::Relaxed)
    }

    /// Partition evictions from the pool (clean or dirty).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Out-of-core Algorithm 3: disk-resident embedding partitions, bitwise
/// identical to the sequential [`crate::Trainer`] (module docs have the
/// full contract).
pub struct PartitionedTrainer {
    core: SessionCore,
    engine: PartitionedEngine,
    partitions: usize,
    stats: Arc<SlotPoolStats>,
}

impl PartitionedTrainer {
    /// Builds a partitioned trainer with `partitions` node buckets;
    /// validates the configuration against the graph and spills the
    /// freshly initialised embeddings to disk.
    ///
    /// # Errors
    /// Configuration or sampler-construction failures; `partitions = 0`;
    /// [`CoreError::Io`] when the spill store cannot be created.
    pub fn new(graph: &Graph, cfg: AdvSgmConfig, partitions: usize) -> Result<Self, CoreError> {
        if partitions == 0 {
            return Err(CoreError::Config {
                field: "partitions",
                reason: "need at least one partition bucket".into(),
            });
        }
        let (mut core, provider, rng) = SessionCore::new(graph, cfg)?;
        let stats = Arc::new(SlotPoolStats::default());
        let engine =
            PartitionedEngine::new(&mut core, provider, rng, partitions, Arc::clone(&stats))?;
        Ok(Self {
            core,
            engine,
            partitions,
            stats,
        })
    }

    /// Rebuilds a trainer mid-schedule from a partitioned checkpoint
    /// captured through [`TrainHooks::on_checkpoint`]. The partition
    /// count is caller-supplied, not persisted: the trajectory is
    /// `P`-invariant, so any `P >= 1` continues the identical run.
    ///
    /// # Errors
    /// [`CoreError::Checkpoint`] when the state is inconsistent, was
    /// captured by an in-RAM engine, or does not match `graph`.
    pub fn resume(
        graph: &Graph,
        state: &CheckpointState,
        partitions: usize,
    ) -> Result<Self, CoreError> {
        if partitions == 0 {
            return Err(CoreError::Config {
                field: "partitions",
                reason: "need at least one partition bucket".into(),
            });
        }
        if state.engine != EngineKind::Partitioned {
            return Err(CoreError::Checkpoint {
                reason: "checkpoint was captured by an in-RAM engine; resume it through \
                         Trainer::resume or ShardedTrainer::resume"
                    .into(),
            });
        }
        let (mut core, provider) = SessionCore::resume(graph, state)?;
        let rng = rng_from_state(state.rng_streams[0]);
        let stats = Arc::new(SlotPoolStats::default());
        let engine =
            PartitionedEngine::new(&mut core, provider, rng, partitions, Arc::clone(&stats))?;
        Ok(Self {
            core,
            engine,
            partitions,
            stats,
        })
    }

    /// The resolved worker-thread count (Phase-B computation only; the
    /// trajectory is thread-invariant).
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The validated configuration this trainer was built with.
    pub fn config(&self) -> &AdvSgmConfig {
        &self.core.cfg
    }

    /// The number of node buckets the embeddings are partitioned into.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// A shared handle to the slot-pool counters, usable after
    /// [`PartitionedTrainer::train`] consumed the trainer.
    pub fn slot_stats(&self) -> Arc<SlotPoolStats> {
        Arc::clone(&self.stats)
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion) and returns
    /// the outcome — the out-of-core counterpart of [`crate::Trainer::run`].
    ///
    /// # Errors
    /// Propagates substrate failures; budget exhaustion is *not* an error
    /// (it sets [`TrainOutcome::stopped_by_budget`]).
    ///
    /// # Examples
    /// ```
    /// use advsgm_core::{AdvSgmConfig, ModelVariant, PartitionedTrainer};
    /// use advsgm_graph::generators::classic::karate_club;
    ///
    /// let graph = karate_club();
    /// let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
    /// let trainer = PartitionedTrainer::new(&graph, cfg, 4).unwrap();
    /// let stats = trainer.slot_stats();
    /// let out = trainer.train(&graph).unwrap();
    /// assert_eq!(out.node_vectors.rows(), graph.num_nodes());
    /// assert!(stats.high_water() <= 2);
    /// ```
    pub fn train(self, graph: &Graph) -> Result<TrainOutcome, CoreError> {
        self.train_with_hooks(graph, &mut NoHooks)
    }

    /// [`PartitionedTrainer::train`] with a [`TrainHooks`] observer (epoch
    /// events, graceful stop, checkpoint capture).
    ///
    /// # Errors
    /// See [`PartitionedTrainer::train`].
    pub fn train_with_hooks(
        mut self,
        graph: &Graph,
        hooks: &mut dyn TrainHooks,
    ) -> Result<TrainOutcome, CoreError> {
        run_schedule(&mut self.core, &mut self.engine, graph, hooks)?;
        // Materialise the final embeddings from the slot pool + spill
        // store; until here `core.emb` is an empty placeholder.
        self.engine.sync_core(&mut self.core)?;
        self.core.into_outcome()
    }

    /// Convenience: build + train in one call.
    ///
    /// # Errors
    /// See [`PartitionedTrainer::new`] / [`PartitionedTrainer::train`].
    pub fn fit(
        graph: &Graph,
        cfg: AdvSgmConfig,
        partitions: usize,
    ) -> Result<TrainOutcome, CoreError> {
        PartitionedTrainer::new(graph, cfg, partitions)?.train(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::Trainer;
    use crate::variants::ModelVariant;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
    use advsgm_linalg::rng::seeded;

    fn small_graph() -> Graph {
        let mut rng = seeded(99);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_edges: 600,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    fn bits(m: &advsgm_linalg::DenseMatrix) -> Vec<u64> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn every_variant_is_bitwise_identical_to_sequential() {
        let g = small_graph();
        for v in ModelVariant::all() {
            let cfg = AdvSgmConfig::test_small(v).with_threads(1);
            let seq = Trainer::fit(&g, cfg.clone()).unwrap();
            let ooc = PartitionedTrainer::fit(&g, cfg, 3).unwrap();
            assert_eq!(
                bits(&seq.node_vectors),
                bits(&ooc.node_vectors),
                "{v}: partitioned must reproduce the sequential trainer bit-for-bit"
            );
            assert_eq!(bits(&seq.context_vectors), bits(&ooc.context_vectors));
            assert_eq!(seq.epoch_losses, ooc.epoch_losses);
            assert_eq!(seq.disc_updates, ooc.disc_updates);
            assert_eq!(seq.epsilon_spent, ooc.epsilon_spent);
            assert_eq!(seq.delta_spent, ooc.delta_spent);
        }
    }

    #[test]
    fn worker_threads_do_not_change_the_bits() {
        // Phase-B results are chunk-invariant, so the pool must be
        // invisible: threads = 4 reproduces the sequential trainer too.
        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        let seq = Trainer::fit(&g, cfg.clone().with_threads(1)).unwrap();
        let ooc = PartitionedTrainer::fit(&g, cfg.with_threads(4), 2).unwrap();
        assert_eq!(bits(&seq.node_vectors), bits(&ooc.node_vectors));
        assert_eq!(seq.epoch_losses, ooc.epoch_losses);
    }

    #[test]
    fn slot_pool_never_holds_more_than_two_partitions() {
        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(1);
        let trainer = PartitionedTrainer::new(&g, cfg, 4).unwrap();
        let stats = trainer.slot_stats();
        trainer.train(&g).unwrap();
        assert!(stats.high_water() <= 2, "high water {}", stats.high_water());
        assert!(stats.loads() > 0);
        assert!(stats.evictions() > 0, "P=4 must swap partitions");
    }

    #[test]
    fn zero_partitions_rejected() {
        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
        assert!(matches!(
            PartitionedTrainer::new(&g, cfg, 0),
            Err(CoreError::Config {
                field: "partitions",
                ..
            })
        ));
    }

    #[test]
    fn resume_rejects_in_ram_checkpoints() {
        use crate::session::{EpochEvent, SessionControl};

        struct Grab(Option<CheckpointState>);
        impl TrainHooks for Grab {
            fn on_epoch(&mut self, _e: &EpochEvent) -> SessionControl {
                SessionControl::Continue
            }
            fn may_checkpoint(&self) -> bool {
                true
            }
            fn wants_checkpoint(&mut self, _epochs_done: usize) -> bool {
                self.0.is_none()
            }
            fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
                self.0 = Some(state.clone());
                SessionControl::Continue
            }
        }

        let g = small_graph();
        let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
        let mut grab = Grab(None);
        Trainer::new(&g, cfg)
            .unwrap()
            .run_with_hooks(&g, &mut grab)
            .unwrap();
        let state = grab.0.expect("captured a sequential checkpoint");
        let err = match PartitionedTrainer::resume(&g, &state, 2) {
            Err(e) => e,
            Ok(_) => panic!("sequential checkpoint must not resume as partitioned"),
        };
        assert!(matches!(err, CoreError::Checkpoint { .. }));
    }
}
