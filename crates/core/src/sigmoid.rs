//! The link function: plain vs constrained sigmoid.
//!
//! Remark 2 of the paper: the skip-gram link `sigma(.)`, the discriminant
//! `F(.)`, and the generator activation `phi(.)` are all logistic sigmoids.
//! Section IV-C swaps `sigma`/`F` for the constrained sigmoid `S(x)` so the
//! adaptive weight `lambda = 1/S(.)` stays bounded. This enum lets every
//! loss/gradient routine work with either.

use advsgm_linalg::activations::{log_sigmoid, sigmoid, ConstrainedSigmoid};

/// Which sigmoid the discriminator uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SigmoidKind {
    /// The ordinary logistic sigmoid (SGM / DP-SGM / DP-ASGM).
    Plain,
    /// The paper's constrained sigmoid with exponential clipping bounds
    /// `(a, b)` (AdvSGM; Section IV-C).
    Constrained(ConstrainedSigmoid),
}

impl SigmoidKind {
    /// Paper-default constrained sigmoid (`a = 1e-5`, `b = 120`).
    pub fn paper_constrained() -> Self {
        SigmoidKind::Constrained(ConstrainedSigmoid::PAPER_DEFAULT)
    }

    /// Constrained sigmoid with explicit bounds.
    pub fn constrained(a: f64, b: f64) -> Self {
        SigmoidKind::Constrained(ConstrainedSigmoid::new(a, b))
    }

    /// `S(x)` — the link value in (0, 1).
    #[inline]
    pub fn value(&self, x: f64) -> f64 {
        match self {
            SigmoidKind::Plain => sigmoid(x),
            SigmoidKind::Constrained(s) => s.eval(x),
        }
    }

    /// `ln S(x)`, numerically stable.
    #[inline]
    pub fn log_value(&self, x: f64) -> f64 {
        match self {
            SigmoidKind::Plain => log_sigmoid(x),
            SigmoidKind::Constrained(s) => s.eval(x).ln(),
        }
    }

    /// `dS/dx`.
    #[inline]
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            SigmoidKind::Plain => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            SigmoidKind::Constrained(s) => s.derivative(x),
        }
    }

    /// The coefficient `-d/dx ln S(x) = -S'(x)/S(x)` (a negative number
    /// whose magnitude shrinks as the pair is already well classified);
    /// gradient of the skip-gram loss `-ln S(x)` w.r.t. its argument.
    #[inline]
    pub fn neg_log_grad(&self, x: f64) -> f64 {
        match self {
            SigmoidKind::Plain => sigmoid(x) - 1.0, // -(1 - sigma(x))
            SigmoidKind::Constrained(s) => {
                let v = s.eval(x);
                -s.derivative(x) / v
            }
        }
    }

    /// `d/dx [-ln(1 - S(x))] = S'(x)/(1 - S(x))`; gradient coefficient of
    /// the adversarial loss terms in Eq. (13). For the plain sigmoid this
    /// is exactly `sigma(x)`.
    #[inline]
    pub fn neg_log_one_minus_grad(&self, x: f64) -> f64 {
        match self {
            SigmoidKind::Plain => sigmoid(x),
            SigmoidKind::Constrained(s) => {
                let v = s.eval(x);
                s.derivative(x) / (1.0 - v)
            }
        }
    }

    /// The paper's adaptive weight `lambda = 1/S(x)` (Theorem 6).
    #[inline]
    pub fn inverse_weight(&self, x: f64) -> f64 {
        1.0 / self.value(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_matches_known_values() {
        let s = SigmoidKind::Plain;
        assert!((s.value(0.0) - 0.5).abs() < 1e-12);
        assert!((s.neg_log_grad(0.0) + 0.5).abs() < 1e-12);
        assert!((s.neg_log_one_minus_grad(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn neg_log_grad_is_gradient_of_neg_log_s() {
        for kind in [SigmoidKind::Plain, SigmoidKind::paper_constrained()] {
            for &x in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
                let h = 1e-6;
                let fd = (-kind.log_value(x + h) + kind.log_value(x - h)) / (2.0 * h);
                let an = kind.neg_log_grad(x);
                assert!((fd - an).abs() < 1e-5, "{kind:?} x={x}: fd={fd} an={an}");
            }
        }
    }

    #[test]
    fn neg_log_one_minus_grad_matches_fd() {
        for kind in [SigmoidKind::Plain, SigmoidKind::paper_constrained()] {
            for &x in &[-2.0, 0.0, 2.0] {
                let h = 1e-6;
                let f = |x: f64| -(1.0 - kind.value(x)).ln();
                let fd = (f(x + h) - f(x - h)) / (2.0 * h);
                let an = kind.neg_log_one_minus_grad(x);
                assert!((fd - an).abs() < 1e-5, "{kind:?} x={x}: fd={fd} an={an}");
            }
        }
    }

    #[test]
    fn constrained_weight_bounded() {
        let kind = SigmoidKind::paper_constrained();
        for &x in &[-1e6, -10.0, 0.0, 10.0, 1e6] {
            let l = kind.inverse_weight(x);
            assert!(
                (1.0..=122.0).contains(&l),
                "lambda {l} out of range at x={x}"
            );
        }
    }

    #[test]
    fn plain_weight_unbounded_above_one() {
        let kind = SigmoidKind::Plain;
        assert!(kind.inverse_weight(-20.0) > 1e8);
        assert!(kind.inverse_weight(20.0) >= 1.0);
    }
}
