//! The sequential [`Engine`]: single-threaded step execution on one
//! interleaved RNG stream.
//!
//! This is the literal Algorithm-3 step semantics the repo started from:
//! one `SmallRng` (the continuation of the init stream) drives sampling,
//! fake-neighbor generation, and noise draws in program order, so the
//! whole trajectory is a pure function of the seed. The discriminator
//! update implements Theorem 6 literally: per pair the released direction
//! is `clip(dL_sgm/dv + v')` and a per-batch noise vector
//! `N(0, (C sigma)^2 I)` rides along each summand (Eqs. 22–23), with the
//! per-row touch-count normalisation of DESIGN.md §5.

use std::collections::HashMap;

use advsgm_graph::Graph;
use advsgm_linalg::rng::{gaussian_vec, rng_state};
use advsgm_linalg::{backend, vector};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::error::CoreError;
use crate::loss::novel_loss_batch;
use crate::sampler::{BatchProvider, DiscBatch};
use crate::session::{
    accumulate, apply_noisy_updates, clipped_pair_grads, gradient_noise_std, Engine, EngineKind,
    EngineStreams, PairCtx, PairFakes, SessionCore,
};
use crate::variants::ModelVariant;
use crate::weighting::WeightMode;

/// Single-threaded step execution (the classic `Trainer` engine).
pub(crate) struct SequentialEngine {
    /// Algorithm-2 batch provisioning; also used by the Fig. 2 harness's
    /// post-training loss evaluation through the `Trainer` facade.
    pub(crate) provider: BatchProvider,
    /// The one RNG stream: init-stream continuation, interleaving
    /// sampling, fakes, and noise in program order.
    pub(crate) rng: SmallRng,
    /// The negative half of a sampled iteration, buffered between the two
    /// `next_batch` calls of one discriminator iteration (both batches are
    /// drawn together so the RNG order matches `sample_disc_iteration`).
    pending_neg: Option<DiscBatch>,
}

impl SequentialEngine {
    /// Wraps a provider and the post-init RNG stream.
    pub(crate) fn new(provider: BatchProvider, rng: SmallRng) -> Self {
        Self {
            provider,
            rng,
            pending_neg: None,
        }
    }
}

impl Engine for SequentialEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sequential
    }

    fn threads(&self) -> usize {
        1
    }

    fn next_batch(&mut self, graph: &Graph) -> Result<DiscBatch, CoreError> {
        match self.pending_neg.take() {
            Some(neg) => Ok(neg),
            None => {
                let (pos, neg) = self.provider.sample_disc_iteration(graph, &mut self.rng)?;
                self.pending_neg = Some(neg);
                Ok(pos)
            }
        }
    }

    /// One discriminator update (Algorithm 3 line 8) over a batch.
    fn disc_update(&mut self, core: &mut SessionCore, batch: &DiscBatch) -> Result<(), CoreError> {
        let r = core.cfg.dim;
        let variant = core.cfg.variant;
        let clip = core.cfg.clip;
        // Per-batch shared noise vectors (Theorem 6's N_{D,1}, N_{D,2}).
        let noise_std = gradient_noise_std(&core.cfg);
        let n_in = gaussian_vec(&mut self.rng, noise_std, r);
        let n_out = gaussian_vec(&mut self.rng, noise_std, r);

        // Accumulate (sum of clipped per-pair grads, touch count) per row.
        let mut acc_in: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let mut acc_out: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let count = batch.pairs.len();
        debug_assert!(count > 0, "empty batch");

        // For the adversarial variants, sample all fake neighbors up front
        // and (for AdvSGM) compute the batch-mean fakes: the augment uses
        // the *centered* fake `v' - mean(v')` as a control variate, so the
        // common component of the generator output (which would drift every
        // touched row identically and crush the skip-gram signal inside the
        // clip) cancels, while the per-node structure the generator learned
        // passes through. Centering subtracts a pair-independent constant,
        // so Theorem 6's sensitivity/noise argument is unchanged.
        let adversarial = variant.is_adversarial();
        let mut fakes_j: Vec<Vec<f64>> = Vec::new();
        let mut fakes_i: Vec<Vec<f64>> = Vec::new();
        let mut mean_j = vec![0.0; r];
        let mut mean_i = vec![0.0; r];
        if adversarial {
            for &(i, j) in &batch.pairs {
                let fj = core.gens.for_i.generate(j, &mut self.rng).v;
                let fi = core.gens.for_j.generate(i, &mut self.rng).v;
                vector::add_assign(&mut mean_j, &fj);
                vector::add_assign(&mut mean_i, &fi);
                fakes_j.push(fj);
                fakes_i.push(fi);
            }
            vector::scale(&mut mean_j, 1.0 / count as f64);
            vector::scale(&mut mean_i, 1.0 / count as f64);
        }

        for (idx, &(i, j)) in batch.pairs.iter().enumerate() {
            let pair_fakes = adversarial.then(|| PairFakes {
                fake_j: &fakes_j[idx],
                fake_i: &fakes_i[idx],
                mean_j: &mean_j,
                mean_i: &mean_i,
            });
            let (gi, gj) = clipped_pair_grads(
                core.kind,
                variant,
                clip,
                PairCtx::of(batch, idx),
                core.emb.input(i),
                core.emb.output(j),
                pair_fakes,
            );
            accumulate(&mut acc_in, i, gi);
            accumulate(&mut acc_out, j, gj);
        }

        // Apply noisy updates with the per-row touch-count normalisation
        // (DESIGN.md §5): signal and each row's noise share rescale
        // identically, so the privacy analysis is untouched. The tiled
        // helper changes only the order across independent rows.
        let eta = core.cfg.eta_d;
        let project = core.cfg.project_rows && variant != ModelVariant::Sgm;
        apply_noisy_updates(acc_in, &n_in, |i, g| {
            core.emb.step_input(i, eta, g, project)
        });
        apply_noisy_updates(acc_out, &n_out, |j, g| {
            core.emb.step_output(j, eta, g, project)
        });
        Ok(())
    }

    /// One generator iteration (Algorithm 3 lines 14–18, Eq. 17).
    fn generator_update(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<(), CoreError> {
        let r = core.cfg.dim;
        let sample_count = core.cfg.batch_size * (core.cfg.negatives + 1);
        // Activation-input noise only exists in the full AdvSGM loss.
        let noise_std = gradient_noise_std(&core.cfg);
        let ng1 = gaussian_vec(&mut self.rng, noise_std, r);
        let ng2 = gaussian_vec(&mut self.rng, noise_std, r);

        let mut grads_j: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let mut grads_i: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
        let edges = graph.edges();
        for _ in 0..sample_count {
            let e = edges[self.rng.gen_range(0..edges.len())];
            // Random orientation, matching the discriminator's convention.
            let (s, t) = if self.rng.gen::<bool>() {
                (e.u().index(), e.v().index())
            } else {
                (e.v().index(), e.u().index())
            };
            let vi = core.emb.input(s).to_vec();
            let vj = core.emb.output(t).to_vec();
            // Fake neighbor of the output-side node t, paired with real v_i.
            let f1 = core.gens.for_i.generate(t, &mut self.rng);
            let (s1_fake, s1_noise) = backend::dot2(&vi, &f1.v, &ng1);
            let s1 = s1_fake + s1_noise;
            // d/ds [ln(1 - S(s))] = -S'/(1-S).
            let c1 = -core.kind.neg_log_one_minus_grad(s1);
            let up1 = vector::scaled(c1, &vi);
            core.gens.for_i.accumulate_grad(&f1, &up1, &mut grads_j);
            // Fake neighbor of the input-side node s, paired with real v_j.
            let f2 = core.gens.for_j.generate(s, &mut self.rng);
            let (s2_fake, s2_noise) = backend::dot2(&vj, &f2.v, &ng2);
            let s2 = s2_fake + s2_noise;
            let c2 = -core.kind.neg_log_one_minus_grad(s2);
            let up2 = vector::scaled(c2, &vj);
            core.gens.for_j.accumulate_grad(&f2, &up2, &mut grads_i);
        }
        core.gens.for_i.step(core.cfg.eta_g, &grads_j);
        core.gens.for_j.step(core.cfg.eta_g, &grads_i);
        Ok(())
    }

    /// Per-epoch `|L_Nov|` diagnostic on one fresh batch.
    fn epoch_loss(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<f64, CoreError> {
        let (pos, signs) = self.provider.positives_with_signs(graph, &mut self.rng)?;
        let negs = self.provider.negatives(&pos, &mut self.rng);
        let mode = if core.cfg.variant.is_adversarial() {
            WeightMode::InverseS
        } else {
            WeightMode::Fixed(0.0)
        };
        Ok(novel_loss_batch(
            core.kind,
            mode,
            &core.emb,
            &core.gens,
            &pos,
            &signs,
            &negs,
            gradient_noise_std(&core.cfg),
            &mut self.rng,
        )
        .abs())
    }

    fn streams(&self) -> EngineStreams {
        debug_assert!(
            self.pending_neg.is_none(),
            "checkpoint capture mid-iteration"
        );
        EngineStreams {
            rngs: vec![rng_state(&self.rng)],
            edge_permutation: self.provider.edge_permutation().to_vec(),
        }
    }
}
