//! The sharded [`Engine`]: producer/worker execution (DESIGN.md §7).
//!
//! Executes the same Algorithm-3 steps as the sequential engine but splits
//! every batch across a pool of worker threads, following the structure of
//! the paper's own privacy argument: Theorem 6 releases a *sum of
//! independently clipped per-pair gradients* plus one batch noise vector,
//! so per-pair work is embarrassingly parallel and only the final
//! sum-and-apply is sequential. Per discriminator update:
//!
//! 1. **Produce** — a dedicated producer thread runs Algorithm 2
//!    ([`BatchProvider::sample_disc_iteration`]) ahead of the consumer
//!    through a bounded queue, so sampling for iteration `t + 1` overlaps
//!    the gradient work of iteration `t`;
//! 2. **Shard** — the batch is cut into fixed-size shards
//!    (`AdvSgmConfig::shard_size`, default `ceil(B / threads)`); shard
//!    `k` of update `u` gets its own RNG stream
//!    `seeded(derive_seed(derive_seed(disc_base, u), 1 + k))`;
//! 3. **Map** — workers compute clipped per-pair gradient contributions
//!    into **thread-local accumulators** (a `row -> (grad sum, touch
//!    count)` map per shard, summed in pair order);
//! 4. **Reduce** — the main thread folds shard accumulators **in shard
//!    order**, so each row's floating-point sum has one fixed association
//!    regardless of OS scheduling;
//! 5. **Apply** — the Theorem-6 batch noise (drawn once per update from
//!    the update's stream 0) and the per-row touch-count normalisation
//!    (DESIGN.md §5) are applied exactly as in the sequential engine.
//!
//! For checkpointing, the producer attaches a [`ProducerSnapshot`] (its
//! RNG state plus the edge sampler's permutation) to each epoch's loss
//! batch: that snapshot *is* the producer's state at the epoch boundary —
//! the live producer has already raced ahead of the consumer, so its
//! current state is never the right thing to persist. Resume seeds a
//! fresh producer from the snapshot and starts it at the next epoch.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};

use advsgm_graph::sampling::negative::NegativePair;
use advsgm_graph::{Edge, Graph, GraphError};
use advsgm_linalg::rng::{derive_seed, gaussian_vec, rng_state, seeded};
use advsgm_linalg::{backend, vector};
use advsgm_parallel::ThreadPool;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::error::CoreError;
use crate::loss::novel_loss_batch;
use crate::sampler::{BatchProvider, DiscBatch};
use crate::session::{
    accumulate, apply_noisy_updates, clipped_pair_grads, gradient_noise_std, Engine, EngineKind,
    EngineStreams, PairCtx, PairFakes, RowAcc, SessionCore, STREAM_DISC, STREAM_GEN,
};
use crate::variants::ModelVariant;
use crate::weighting::WeightMode;

/// Bounded depth of the producer -> consumer batch queue: enough for
/// sampling to run ahead of gradient work, small enough to cap memory at a
/// few batches.
pub(crate) const QUEUE_DEPTH: usize = 4;

/// The producer's checkpointable state as of an epoch boundary.
#[derive(Debug, Clone)]
pub(crate) struct ProducerSnapshot {
    /// The producer RNG's state after finishing the epoch's production.
    pub rng: [u64; 4],
    /// The edge sampler's index permutation at the same point.
    pub edge_permutation: Vec<u32>,
}

/// Items flowing from the producer thread to the training loop.
pub(crate) enum Produced {
    /// One discriminator update batch.
    Update(DiscBatch),
    /// The epoch-loss diagnostic batch (positives, their foe flags, and
    /// negatives), sent once per epoch, plus the producer's state at this
    /// epoch boundary when the run can checkpoint (`None` otherwise — the
    /// snapshot costs an `O(|E|)` copy, pure waste for a run that will
    /// never capture one).
    Loss(
        Vec<Edge>,
        Vec<bool>,
        Vec<NegativePair>,
        Option<Box<ProducerSnapshot>>,
    ),
    /// Sampling failed; training must abort with this error.
    Failed(GraphError),
}

/// What the producer thread must produce: the epoch range still to run,
/// the per-epoch iteration count, and whether to attach boundary
/// snapshots for checkpointing.
pub(crate) struct ProducePlan {
    /// First epoch to produce (0 for fresh runs, `epochs_done` on resume).
    pub start_epoch: usize,
    /// Total configured epochs.
    pub epochs: usize,
    /// Discriminator iterations per epoch.
    pub disc_iters: usize,
    /// Attach a [`ProducerSnapshot`] to each epoch's loss batch.
    pub snapshots: bool,
}

/// Runs Algorithm 2 production for the plan's epoch range, one iteration
/// ahead of the consumer. Ends when the schedule is produced or the
/// consumer hangs up (early stop / error).
pub(crate) fn produce_batches(
    mut provider: BatchProvider,
    graph: &Graph,
    mut rng: SmallRng,
    plan: &ProducePlan,
    tx: &SyncSender<Produced>,
) {
    for _ in plan.start_epoch..plan.epochs {
        for _ in 0..plan.disc_iters {
            match provider.sample_disc_iteration(graph, &mut rng) {
                Ok((pos, neg)) => {
                    if tx.send(Produced::Update(pos)).is_err()
                        || tx.send(Produced::Update(neg)).is_err()
                    {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Produced::Failed(e));
                    return;
                }
            }
        }
        let (loss_pos, loss_signs) = match provider.positives_with_signs(graph, &mut rng) {
            Ok(v) => v,
            Err(e) => {
                let _ = tx.send(Produced::Failed(e));
                return;
            }
        };
        let loss_neg = provider.negatives(&loss_pos, &mut rng);
        // Everything this epoch consumes has now been drawn: this is the
        // state a resume-at-this-boundary producer must start from.
        let snapshot = plan.snapshots.then(|| {
            Box::new(ProducerSnapshot {
                rng: rng_state(&rng),
                edge_permutation: provider.edge_permutation().to_vec(),
            })
        });
        if tx
            .send(Produced::Loss(loss_pos, loss_signs, loss_neg, snapshot))
            .is_err()
        {
            return;
        }
    }
}

/// The `threads > 1` execution strategy. Lives inside the facade's thread
/// scope: it borrows the worker pool and owns the consumer end of the
/// producer queue.
pub(crate) struct ShardedEngine<'p> {
    pool: &'p mut ThreadPool,
    rx: Receiver<Produced>,
    threads: usize,
    /// Derived stream for the epoch-loss diagnostic's noise draws.
    loss_rng: SmallRng,
    disc_base: u64,
    gen_base: u64,
    /// The producer state at the most recent epoch boundary (updated at
    /// every loss-batch receipt; initialised to the producer's start
    /// state, which is only read if a checkpoint could be captured before
    /// the first epoch completes — it cannot).
    latest: ProducerSnapshot,
}

impl<'p> ShardedEngine<'p> {
    /// Builds the engine for one training run.
    pub(crate) fn new(
        pool: &'p mut ThreadPool,
        rx: Receiver<Produced>,
        threads: usize,
        seed: u64,
        loss_rng: SmallRng,
        initial: ProducerSnapshot,
    ) -> Self {
        Self {
            pool,
            rx,
            threads,
            loss_rng,
            disc_base: derive_seed(seed, STREAM_DISC),
            gen_base: derive_seed(seed, STREAM_GEN),
            latest: initial,
        }
    }

    /// Pairs per shard for a batch of `count` pairs.
    fn shard_len(&self, core: &SessionCore, count: usize) -> usize {
        if core.cfg.shard_size > 0 {
            core.cfg.shard_size
        } else {
            count.div_ceil(self.threads).max(1)
        }
    }

    /// Receives the next produced item, surfacing producer-side failures.
    fn recv_item(&mut self) -> Result<Produced, CoreError> {
        match self.rx.recv() {
            Ok(Produced::Failed(e)) => Err(e.into()),
            Ok(item) => Ok(item),
            Err(_) => Err(CoreError::Config {
                field: "sampler",
                reason: "batch producer terminated before the training schedule completed".into(),
            }),
        }
    }
}

impl Engine for ShardedEngine<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Sharded
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn next_batch(&mut self, _graph: &Graph) -> Result<DiscBatch, CoreError> {
        match self.recv_item()? {
            Produced::Update(b) => Ok(b),
            _ => unreachable!("producer schedule mismatch: expected update"),
        }
    }

    /// One discriminator update, sharded (module docs, steps 2–5). The
    /// update's stream index is the schedule cursor's `disc_updates`
    /// counter, which also makes resumed runs derive the same streams as
    /// uninterrupted ones.
    fn disc_update(&mut self, core: &mut SessionCore, batch: &DiscBatch) -> Result<(), CoreError> {
        let r = core.cfg.dim;
        let count = batch.pairs.len();
        if count == 0 {
            // Cannot happen with the current producer (batch >= 1 after
            // clamping), but an empty update is a well-defined no-op.
            return Ok(());
        }
        let update_seed = derive_seed(self.disc_base, core.cursor.disc_updates);
        let variant = core.cfg.variant;
        let clip = core.cfg.clip;
        let kind = core.kind;
        let shard_len = self.shard_len(core, count);

        // Theorem 6's per-batch noise (N_{D,1}, N_{D,2}): one draw per
        // update from the update's stream 0, like the sequential engine.
        let noise_std = gradient_noise_std(&core.cfg);
        let mut noise_rng = seeded(derive_seed(update_seed, 0));
        let n_in = gaussian_vec(&mut noise_rng, noise_std, r);
        let n_out = gaussian_vec(&mut noise_rng, noise_std, r);

        // Phase A (adversarial variants): generate all fake neighbors in
        // parallel — the only RNG-consuming per-pair work — with one
        // derived stream per shard, and reduce the batch means in shard
        // order (the centering control variate needs the whole batch).
        let adversarial = variant.is_adversarial();
        let (fakes, mean_j, mean_i) = if adversarial {
            let gens = &core.gens;
            let shard_out = self
                .pool
                .map_chunks(&batch.pairs, shard_len, |k, _offset, chunk| {
                    let mut rng = seeded(derive_seed(update_seed, 1 + k as u64));
                    let mut local = Vec::with_capacity(chunk.len());
                    let mut sum_j = vec![0.0; r];
                    let mut sum_i = vec![0.0; r];
                    for &(i, j) in chunk {
                        let fj = gens.for_i.generate(j, &mut rng).v;
                        let fi = gens.for_j.generate(i, &mut rng).v;
                        vector::add_assign(&mut sum_j, &fj);
                        vector::add_assign(&mut sum_i, &fi);
                        local.push((fj, fi));
                    }
                    (local, sum_j, sum_i)
                });
            let mut fakes = Vec::with_capacity(count);
            let mut mean_j = vec![0.0; r];
            let mut mean_i = vec![0.0; r];
            for (local, sum_j, sum_i) in shard_out {
                fakes.extend(local);
                vector::add_assign(&mut mean_j, &sum_j);
                vector::add_assign(&mut mean_i, &sum_i);
            }
            vector::scale(&mut mean_j, 1.0 / count as f64);
            vector::scale(&mut mean_i, 1.0 / count as f64);
            (fakes, mean_j, mean_i)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        // Phase B: clipped per-pair gradients into thread-local
        // accumulators. RNG-free, so shards only need their data.
        let emb = &core.emb;
        let fakes = &fakes;
        let mean_j = &mean_j;
        let mean_i = &mean_i;
        let shard_accs = self
            .pool
            .map_chunks(&batch.pairs, shard_len, |_k, offset, chunk| {
                let mut acc_in: RowAcc = HashMap::new();
                let mut acc_out: RowAcc = HashMap::new();
                for (local_idx, &(i, j)) in chunk.iter().enumerate() {
                    let idx = offset + local_idx;
                    let pair_fakes = adversarial.then(|| PairFakes {
                        fake_j: &fakes[idx].0,
                        fake_i: &fakes[idx].1,
                        mean_j,
                        mean_i,
                    });
                    let (gi, gj) = clipped_pair_grads(
                        kind,
                        variant,
                        clip,
                        PairCtx::of(batch, idx),
                        emb.input(i),
                        emb.output(j),
                        pair_fakes,
                    );
                    accumulate(&mut acc_in, i, gi);
                    accumulate(&mut acc_out, j, gj);
                }
                (acc_in, acc_out)
            });

        // Deterministic reduction: fold shard accumulators in shard order,
        // so every row's gradient sum has one fixed floating-point
        // association no matter which worker computed which shard.
        let mut acc_in: RowAcc = HashMap::new();
        let mut acc_out: RowAcc = HashMap::new();
        for (shard_in, shard_out) in shard_accs {
            merge_acc(&mut acc_in, shard_in);
            merge_acc(&mut acc_out, shard_out);
        }

        // Apply: identical to the sequential engine (per-row noise share +
        // touch-count normalisation; DESIGN.md §5). Row updates are
        // independent, so the tiled ascending-row order cannot affect the
        // result.
        let eta = core.cfg.eta_d;
        let project = core.cfg.project_rows && variant != ModelVariant::Sgm;
        apply_noisy_updates(acc_in, &n_in, |i, g| {
            core.emb.step_input(i, eta, g, project)
        });
        apply_noisy_updates(acc_out, &n_out, |j, g| {
            core.emb.step_output(j, eta, g, project)
        });
        Ok(())
    }

    /// One generator iteration (Algorithm 3 lines 14–18), sharded over the
    /// `B (k + 1)` samples with the same per-shard stream scheme; the
    /// iteration's stream index is the cursor's `gen_updates` counter.
    fn generator_update(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<(), CoreError> {
        let r = core.cfg.dim;
        let sample_count = core.cfg.batch_size * (core.cfg.negatives + 1);
        let shard_len = self.shard_len(core, sample_count);
        let parts = sample_count.div_ceil(shard_len);
        let gen_seed = derive_seed(self.gen_base, core.cursor.gen_updates);
        let noise_std = gradient_noise_std(&core.cfg);
        let mut noise_rng = seeded(derive_seed(gen_seed, 0));
        let ng1 = gaussian_vec(&mut noise_rng, noise_std, r);
        let ng2 = gaussian_vec(&mut noise_rng, noise_std, r);

        let emb = &core.emb;
        let gens = &core.gens;
        let kind = core.kind;
        let edges = graph.edges();
        let ng1 = &ng1;
        let ng2 = &ng2;
        let shard_grads = self.pool.map_parts(sample_count, parts, |k, range| {
            let mut rng = seeded(derive_seed(gen_seed, 1 + k as u64));
            let mut grads_j: RowAcc = HashMap::new();
            let mut grads_i: RowAcc = HashMap::new();
            for _ in range {
                let e = edges[rng.gen_range(0..edges.len())];
                let (s, t) = if rng.gen::<bool>() {
                    (e.u().index(), e.v().index())
                } else {
                    (e.v().index(), e.u().index())
                };
                let vi = emb.input(s);
                let vj = emb.output(t);
                let f1 = gens.for_i.generate(t, &mut rng);
                let (s1_fake, s1_noise) = backend::dot2(vi, &f1.v, ng1);
                let c1 = -kind.neg_log_one_minus_grad(s1_fake + s1_noise);
                let up1 = vector::scaled(c1, vi);
                gens.for_i.accumulate_grad(&f1, &up1, &mut grads_j);
                let f2 = gens.for_j.generate(s, &mut rng);
                let (s2_fake, s2_noise) = backend::dot2(vj, &f2.v, ng2);
                let c2 = -kind.neg_log_one_minus_grad(s2_fake + s2_noise);
                let up2 = vector::scaled(c2, vj);
                gens.for_j.accumulate_grad(&f2, &up2, &mut grads_i);
            }
            (grads_j, grads_i)
        });

        let mut grads_j: RowAcc = HashMap::new();
        let mut grads_i: RowAcc = HashMap::new();
        for (shard_j, shard_i) in shard_grads {
            merge_acc(&mut grads_j, shard_j);
            merge_acc(&mut grads_i, shard_i);
        }
        core.gens.for_i.step(core.cfg.eta_g, &grads_j);
        core.gens.for_j.step(core.cfg.eta_g, &grads_i);
        Ok(())
    }

    /// Per-epoch `|L_Nov|` diagnostic on the producer's loss batch; also
    /// records the producer snapshot riding along with it.
    fn epoch_loss(&mut self, core: &mut SessionCore, _graph: &Graph) -> Result<f64, CoreError> {
        let (loss_pos, loss_signs, loss_neg, snapshot) = match self.recv_item()? {
            Produced::Loss(p, sg, n, s) => (p, sg, n, s),
            _ => unreachable!("producer schedule mismatch: expected loss batch"),
        };
        if let Some(s) = snapshot {
            self.latest = *s;
        }
        let mode = if core.cfg.variant.is_adversarial() {
            WeightMode::InverseS
        } else {
            WeightMode::Fixed(0.0)
        };
        Ok(novel_loss_batch(
            core.kind,
            mode,
            &core.emb,
            &core.gens,
            &loss_pos,
            &loss_signs,
            &loss_neg,
            gradient_noise_std(&core.cfg),
            &mut self.loss_rng,
        )
        .abs())
    }

    fn streams(&self) -> EngineStreams {
        EngineStreams {
            rngs: vec![self.latest.rng, rng_state(&self.loss_rng)],
            edge_permutation: self.latest.edge_permutation.clone(),
        }
    }
}

/// Folds one shard's accumulator into the global one. Rows are summed in
/// the order shards are folded, which the caller fixes to shard order.
fn merge_acc(into: &mut RowAcc, from: RowAcc) {
    for (row, (grad, c)) in from {
        match into.get_mut(&row) {
            Some((sum, count)) => {
                vector::add_assign(sum, &grad);
                *count += c;
            }
            None => {
                into.insert(row, (grad, c));
            }
        }
    }
}
