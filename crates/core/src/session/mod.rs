//! The unified training-session layer (DESIGN.md §10).
//!
//! Algorithm 3 is *one* loop — epochs of `n_D` discriminator iterations
//! (each a positive and a negative mechanism invocation with the
//! Theorem-7 stopping rule) followed by `n_G` generator iterations and an
//! epoch-loss diagnostic — and this module is its single home. The loop
//! (the crate-private `run_schedule`) owns every schedule decision:
//! iteration counts, accounting (`record_and_check`), budget stop,
//! epoch-loss recording, and [`TrainOutcome`] assembly, while the
//! *execution* of each step is delegated to an
//! `Engine` strategy with exactly three implementations:
//!
//! * `sequential::SequentialEngine` — single-threaded step execution on
//!   one interleaved RNG stream (the classic `Trainer` behaviour);
//! * `sharded::ShardedEngine` — the producer/worker execution of
//!   DESIGN.md §7 (Algorithm-2 production one iteration ahead, per-shard
//!   RNG streams, deterministic shard-order reduction);
//! * `partitioned::PartitionedEngine` — the out-of-core execution of
//!   DESIGN.md §14: embedding partitions swap through a two-slot pool
//!   (spilling to disk) while every step *replays* the sequential
//!   engine's RNG draws and floating-point accumulation order, so its
//!   trajectory is bitwise-identical to the sequential engine's at any
//!   partition count and thread count.
//!
//! [`Trainer`](crate::Trainer), [`ShardedTrainer`](crate::ShardedTrainer),
//! and [`PartitionedTrainer`](crate::PartitionedTrainer) are thin facades
//! over a session core plus one engine; the engine trait and all three
//! implementations are deliberately crate-private, so a fourth loop
//! cannot appear without touching this layer.
//!
//! # Observability: [`TrainHooks`]
//!
//! The session invokes a caller-supplied hook at every epoch boundary with
//! the epoch index, the `|L_Nov|` diagnostic, the accountant's
//! [`SpendSnapshot`], and the stop reason when the run is ending. Hooks can
//! request a graceful stop ([`SessionControl::Stop`]) and can request
//! checkpoints.
//!
//! # Checkpointing: [`CheckpointState`]
//!
//! A checkpoint captures *everything* the next epoch depends on —
//! parameters, accountant totals, RNG stream positions, the edge sampler's
//! permutation, and the schedule cursor — so resuming an interrupted run
//! is **bitwise-identical** to never having stopped, at 1 and N threads
//! (`tests/checkpoint_resume.rs`). Serialisation to disk lives in
//! `advsgm-store` (`docs/FORMAT.md`, the `.actk` section).
//!
//! Trust boundary (DESIGN.md §10): a checkpoint is *curator-side* state.
//! Its model parameters are post-noise (already accounted — persisting
//! them spends nothing extra, Theorem 5), and its RNG/sampler streams are
//! derivable from the seed the curator already holds, so a checkpoint adds
//! no information beyond (released state, configuration, seed). It is not
//! a public release artifact; only the exported `.aemb` store is.

use std::collections::HashMap;

use advsgm_graph::Graph;
use advsgm_linalg::rng::{derive_seed, seeded};
use advsgm_linalg::{backend, vector, DenseMatrix};
pub use advsgm_privacy::SpendSnapshot;
use advsgm_privacy::{AccountantState, PrivacyError, RdpAccountant};
use rand::rngs::SmallRng;

use crate::config::AdvSgmConfig;
use crate::error::CoreError;
use crate::grad::{advsgm_augment, dpasgm_augment, sgm_negative_grads, sgm_positive_grads};
use crate::model::{Embeddings, GeneratorPair};
use crate::sampler::{BatchProvider, DiscBatch};
use crate::sigmoid::SigmoidKind;
use crate::trainer::TrainOutcome;
use crate::variants::ModelVariant;

pub(crate) mod partitioned;
pub(crate) mod sequential;
pub(crate) mod sharded;

/// Stream tag for the init RNG. Both engines initialise parameters from
/// this stream so they start from identical matrices; the sequential
/// engine then *continues* the stream through training.
pub(crate) const STREAM_INIT: u64 = 0xAD5;
/// Stream tag for the sharded producer thread's Algorithm 2 sampling.
pub(crate) const STREAM_SAMPLER: u64 = 0x5A11;
/// Stream tag for the sharded engine's discriminator update seeds.
pub(crate) const STREAM_DISC: u64 = 0xD15C;
/// Stream tag for the sharded engine's generator update seeds.
pub(crate) const STREAM_GEN: u64 = 0x6E47;
/// Stream tag for the sharded engine's epoch-loss diagnostic draws.
pub(crate) const STREAM_LOSS: u64 = 0x1055;

/// The fixed adversarial weight DP-ASGM uses (`lambda` in Eq. 4; the paper
/// notes `lambda in (0, 1]` is the common choice).
pub(crate) const DPASGM_LAMBDA: f64 = 1.0;

/// Per-coordinate std of the noise entering the applied gradients.
///
/// DP-SGM / DP-ASGM: strict DPSGD calibration `C*sigma` (Abadi et al.;
/// Eqs. 5–6) — at `sigma = 5` this is destructive, which is exactly the
/// behaviour the paper's Table V shows for those baselines.
/// AdvSGM: the activation-argument reading, `C*sigma/r` per coordinate
/// (noise-vector norm ~ `C*sigma/sqrt(r)`), unless `faithful_noise`
/// requests the strict calibration (the ablation setting).
///
/// Shared by both engines so the two paths can never drift apart on
/// calibration (DESIGN.md §6).
pub(crate) fn gradient_noise_std(cfg: &AdvSgmConfig) -> f64 {
    let base = cfg.clip * cfg.sigma;
    match cfg.variant {
        ModelVariant::DpSgm | ModelVariant::DpAsgm => base,
        // The workload variants keep AdvSGM's mechanism (and calibration)
        // unchanged: signs flip the skip-gram base direction, weights scale
        // post-clip — neither touches the noise (DESIGN.md §16).
        ModelVariant::AdvSgm | ModelVariant::SignedAdvSgm | ModelVariant::SpAdvSgm => {
            if cfg.faithful_noise {
                base
            } else {
                base / cfg.dim as f64
            }
        }
        ModelVariant::Sgm | ModelVariant::AdvSgmNoDp => 0.0,
    }
}

/// Records one mechanism invocation against the accountant (when present)
/// and evaluates Algorithm 3's stopping rule (lines 9–11). Returns `true`
/// when training must stop. Lives here — and only here — so no schedule
/// logic can be duplicated between engines.
pub(crate) fn record_and_check(
    accountant: &mut Option<RdpAccountant>,
    cfg: &AdvSgmConfig,
    gamma: f64,
) -> Result<bool, CoreError> {
    let Some(acc) = accountant.as_mut() else {
        return Ok(false);
    };
    acc.record_subsampled_gaussian(cfg.sigma, gamma, 1)?;
    match acc.check_budget(cfg.epsilon, cfg.delta) {
        Ok(()) => Ok(false),
        Err(PrivacyError::BudgetExhausted { .. }) => Ok(true),
        Err(e) => Err(e.into()),
    }
}

/// A sparse per-row gradient accumulator: `row -> (grad sum, touch
/// count)`. Shared by both engines; the insertion order of summands
/// (pair order within a batch/shard) is the load-bearing floating-point
/// association.
pub(crate) type RowAcc = HashMap<usize, (Vec<f64>, usize)>;

/// L1 working-set budget in bytes for one apply tile. Half of a typical
/// 32 KiB L1d: one tile of gradient rows plus the shared noise vector
/// fit together, leaving headroom for the embedding rows streaming
/// through in pass 2.
pub(crate) const APPLY_TILE_BYTES: usize = 16 * 1024;

/// Drains a row accumulator and applies the noisy, touch-count-normalised
/// updates in L1-sized row tiles (DESIGN.md §15).
///
/// Rows are sorted ascending and processed in tiles of
/// [`APPLY_TILE_BYTES`]; within a tile, pass 1 finalises every gradient
/// with [`backend::fused_axpy_scale`] (the shared `noise` vector stays
/// hot in L1 across the whole tile) and pass 2 hands the finished rows to
/// `step` in ascending row order, so the embedding matrix is walked
/// mostly sequentially instead of in hash order.
///
/// Bitwise-neutral by construction: rows are independent (`RowAcc` keys
/// are distinct), each row's arithmetic —
/// `g = (g + c * noise) * (1/c)`, then one `step` — is exactly the
/// per-row sequence the engines performed before tiling, and
/// `fused_axpy_scale` is on the bitwise kernel tier. Only the *order
/// across rows* changes, which no row's result depends on.
pub(crate) fn apply_noisy_updates(acc: RowAcc, noise: &[f64], mut step: impl FnMut(usize, &[f64])) {
    let dim = noise.len().max(1);
    let tile_rows = (APPLY_TILE_BYTES / (dim * std::mem::size_of::<f64>())).max(1);
    let mut rows: Vec<(usize, (Vec<f64>, usize))> = acc.into_iter().collect();
    rows.sort_unstable_by_key(|&(row, _)| row);
    for tile in rows.chunks_mut(tile_rows) {
        for (_, (g, c)) in tile.iter_mut() {
            backend::fused_axpy_scale(g, *c as f64, noise, 1.0 / *c as f64);
        }
        for (row, (g, _)) in tile.iter() {
            step(*row, g);
        }
    }
}

/// Adds one pair's gradient into a row accumulator.
pub(crate) fn accumulate(acc: &mut RowAcc, row: usize, grad: Vec<f64>) {
    match acc.get_mut(&row) {
        Some((sum, c)) => {
            vector::add_assign(sum, &grad);
            *c += 1;
        }
        None => {
            acc.insert(row, (grad, 1));
        }
    }
}

/// One pair's adversarial inputs: its two fake neighbors plus the batch
/// means used by AdvSGM's centering control variate.
pub(crate) struct PairFakes<'a> {
    /// The fake neighbor of the output-side node (paired with `v_i`).
    pub fake_j: &'a [f64],
    /// The fake neighbor of the input-side node (paired with `v_j`).
    pub fake_i: &'a [f64],
    /// Batch mean of the `fake_j` draws.
    pub mean_j: &'a [f64],
    /// Batch mean of the `fake_i` draws.
    pub mean_i: &'a [f64],
}

/// One pair's batch context for [`clipped_pair_grads`]: the batch kind
/// plus the pair's sign/weight channels (DESIGN.md §16).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairCtx {
    /// `true` for a positive (edge) batch, `false` for a negative batch.
    pub positive: bool,
    /// `true` for a foe (antagonistic) edge in a positive batch: the
    /// skip-gram base flips to the repelling direction (arXiv 2512.00307
    /// §IV). Always `false` for sampled negatives and sign-blind batches.
    pub foe: bool,
    /// Structure-preference weight in `(0, 1]`, applied to the *clipped*
    /// gradient (sensitivity stays bounded by the clip norm). `1.0` under
    /// uniform weighting, where no scaling is applied at all.
    pub weight: f64,
}

impl PairCtx {
    /// Context for pair `idx` of `batch`.
    #[inline]
    pub fn of(batch: &DiscBatch, idx: usize) -> Self {
        Self {
            positive: batch.positive,
            foe: batch.foe(idx),
            weight: batch.weight(idx),
        }
    }
}

/// The Theorem-6 per-pair released direction: the closed-form skip-gram
/// gradients, the variant's adversarial augmentation (AdvSGM centers the
/// fake as a control variate; the first-cut DP-ASGM uses it raw), and the
/// DPSGD clip. A foe edge in a positive batch attracts nothing: its base
/// gradient is the repelling (negative-sample) form, same norm bound. A
/// non-unit pair weight scales the gradient *after* the clip, so each
/// summand's sensitivity stays `<= C` and the accountant is unchanged.
/// Lives here — once — so the gradient math can never drift between the
/// sequential and sharded engines. `fakes` is `None` exactly for the
/// non-adversarial variants.
pub(crate) fn clipped_pair_grads(
    kind: SigmoidKind,
    variant: ModelVariant,
    clip: f64,
    ctx: PairCtx,
    vi: &[f64],
    vj: &[f64],
    fakes: Option<PairFakes<'_>>,
) -> (Vec<f64>, Vec<f64>) {
    let attract = ctx.positive && !ctx.foe;
    let grads = if attract {
        sgm_positive_grads(kind, vi, vj)
    } else {
        sgm_negative_grads(kind, vi, vj)
    };
    let mut gi = grads.first;
    let mut gj = grads.second;
    match variant {
        ModelVariant::AdvSgm
        | ModelVariant::AdvSgmNoDp
        | ModelVariant::SignedAdvSgm
        | ModelVariant::SpAdvSgm => {
            // Theorem 6: lambda = 1/S collapses the adversarial gradient
            // to the bare (here: centered) fake neighbor.
            let f = fakes.expect("adversarial variants carry fakes");
            let centered_j = vector::sub(f.fake_j, f.mean_j);
            let centered_i = vector::sub(f.fake_i, f.mean_i);
            advsgm_augment(&mut gi, &centered_j);
            advsgm_augment(&mut gj, &centered_i);
        }
        ModelVariant::DpAsgm => {
            // First-cut: the *real* adversarial gradient (Eq. 11),
            // uncentered — the naive construction the paper shows
            // performs poorly.
            let f = fakes.expect("adversarial variants carry fakes");
            dpasgm_augment(kind, DPASGM_LAMBDA, vi, f.fake_j, &mut gi);
            dpasgm_augment(kind, DPASGM_LAMBDA, vj, f.fake_i, &mut gj);
        }
        ModelVariant::Sgm | ModelVariant::DpSgm => {}
    }
    // DPSGD-style clipping for every variant except plain SGM.
    if variant != ModelVariant::Sgm {
        vector::clip_l2(&mut gi, clip);
        vector::clip_l2(&mut gj, clip);
    }
    // Post-clip pair weighting; the `!= 1.0` gate keeps uniform weighting
    // bitwise-identical to the pre-seam trainer (no multiply by 1.0).
    if ctx.weight != 1.0 {
        vector::scale(&mut gi, ctx.weight);
        vector::scale(&mut gj, ctx.weight);
    }
    (gi, gj)
}

/// Why a training run ended, as reported to [`TrainHooks::on_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every configured epoch ran to completion.
    Completed,
    /// The Theorem-7 accountant crossed the `(epsilon, delta)` target
    /// mid-epoch (Algorithm 3, line 11).
    BudgetExhausted,
}

/// A hook's verdict on whether training should continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionControl {
    /// Keep training.
    Continue,
    /// Stop gracefully at this epoch boundary (the outcome reports the
    /// epochs actually run; this is *not* a budget stop).
    Stop,
}

/// What the session reports to [`TrainHooks::on_epoch`] at each epoch
/// boundary.
#[derive(Debug, Clone)]
pub struct EpochEvent {
    /// 0-based index of the epoch this event concerns.
    pub epoch: usize,
    /// Total epochs the schedule would run (`AdvSgmConfig::epochs`).
    pub epochs_total: usize,
    /// The epoch's `|L_Nov|` diagnostic; `None` when a budget stop aborted
    /// the epoch before its loss evaluation.
    pub loss: Option<f64>,
    /// Discriminator updates applied so far (positive + negative batches).
    pub disc_updates: u64,
    /// The accountant's spend against the configured target (private
    /// variants only).
    pub spend: Option<SpendSnapshot>,
    /// `Some` when this is the run's final event; `None` while training
    /// continues.
    pub stop: Option<StopReason>,
}

/// Observer invoked by the training session at epoch boundaries — the
/// seam behind live CLI progress, the Fig. 2 harness, and checkpointing.
///
/// All methods have no-op defaults, so implementors override only what
/// they need. [`NoHooks`] is the ready-made silent implementation.
pub trait TrainHooks {
    /// Whether this run could ever request a checkpoint. Defaults to
    /// `true`; return `false` to let engines skip the per-epoch
    /// boundary-state snapshots that checkpoint capture needs (for the
    /// sharded engine that is an `O(|E|)` copy per epoch) — the session
    /// will then never call [`TrainHooks::wants_checkpoint`]. Queried
    /// once, before training starts.
    fn may_checkpoint(&self) -> bool {
        true
    }

    /// Called after every completed epoch, and once more (with
    /// `loss: None`, `stop: Some(BudgetExhausted)`) when the privacy
    /// budget stops training mid-epoch. Returning
    /// [`SessionControl::Stop`] ends training gracefully at this
    /// boundary.
    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        let _ = event;
        SessionControl::Continue
    }

    /// Asked after each completed epoch (and after `on_epoch`) whether a
    /// checkpoint should be captured; `epochs_done` counts completed
    /// epochs (1-based). Budget-stopped runs are final and are never
    /// offered a checkpoint.
    fn wants_checkpoint(&mut self, epochs_done: usize) -> bool {
        let _ = epochs_done;
        false
    }

    /// Receives the checkpoint requested by
    /// [`TrainHooks::wants_checkpoint`]. Returning
    /// [`SessionControl::Stop`] ends training gracefully (e.g. when the
    /// hook failed to persist the state and continuing would waste work).
    fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
        let _ = state;
        SessionControl::Continue
    }
}

/// The silent [`TrainHooks`] implementation: no events, no checkpoints
/// (so engines skip snapshot upkeep entirely).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl TrainHooks for NoHooks {
    fn may_checkpoint(&self) -> bool {
        false
    }
}

/// Which execution engine a checkpoint was captured from. Resume restores
/// the *same* engine: trajectories are engine-specific, so resuming a
/// sharded checkpoint sequentially (or vice versa) can never be bitwise
///-faithful and is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Single-threaded step execution (`Trainer`).
    Sequential,
    /// The sharded producer/worker execution (`ShardedTrainer` at
    /// `threads > 1`); the thread count travels in the checkpoint's
    /// `config.num_threads`.
    Sharded,
    /// The out-of-core partition-swapping execution
    /// (`PartitionedTrainer`). Its trajectory replays the sequential
    /// engine's, so its checkpoints are interchangeable across partition
    /// counts — but not across engines, because the stream layout
    /// differs from the sharded engine's.
    Partitioned,
}

/// A complete training checkpoint: everything the remaining epochs depend
/// on, captured at an epoch boundary.
///
/// The contract (enforced by `tests/checkpoint_resume.rs`): resuming from
/// this state runs the tail of the schedule **bitwise-identically** to the
/// uninterrupted run — embeddings, generator tables, epoch losses, update
/// counts, and the reported `epsilon`/`delta` spend all match exactly, at
/// 1 and N threads. Persist it with `advsgm-store`'s checkpoint codec
/// (`docs/FORMAT.md`).
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// The full training configuration. `num_threads` holds the *resolved*
    /// engine width (not the pre-resolution request), so resume does not
    /// depend on the `ADVSGM_THREADS` environment at restore time.
    pub config: AdvSgmConfig,
    /// Node count of the training graph (resume validates it).
    pub graph_nodes: u64,
    /// Edge count of the training graph (resume validates it).
    pub graph_edges: u64,
    /// FNV-1a fingerprint of the graph's node count and edge list; resume
    /// rejects a graph whose fingerprint differs (same counts are not
    /// enough — batch composition depends on edge identity).
    pub graph_fingerprint: u64,
    /// Completed epochs.
    pub epochs_done: u64,
    /// Discriminator updates applied (positive + negative batches) — also
    /// the sharded engine's per-update stream index.
    pub disc_updates: u64,
    /// Generator iterations applied — the sharded engine's per-iteration
    /// stream index.
    pub gen_updates: u64,
    /// Per-epoch `|L_Nov|` diagnostics recorded so far.
    pub epoch_losses: Vec<f64>,
    /// The input (node) vectors `W_in`.
    pub w_in: DenseMatrix,
    /// The output (context) vectors `W_out`.
    pub w_out: DenseMatrix,
    /// Parameter table of the generator faking output-side neighbors.
    pub gen_for_i: DenseMatrix,
    /// Parameter table of the generator faking input-side neighbors.
    pub gen_for_j: DenseMatrix,
    /// The RDP accountant's accumulated state (private variants only).
    pub accountant: Option<AccountantState>,
    /// Which engine captured this state.
    pub engine: EngineKind,
    /// Engine-owned RNG stream positions, in the engine's fixed order:
    /// sequential `[main]`; sharded `[producer, epoch-loss]`;
    /// partitioned `[main]` (it replays the sequential stream).
    pub rng_streams: Vec<[u64; 4]>,
    /// The edge sampler's index permutation at the boundary — the batch
    /// provider's only hidden mutable state.
    pub edge_permutation: Vec<u32>,
}

/// FNV-1a over the graph's node count and edge list: cheap (one pass over
/// `E`), order-sensitive, and enough to catch "resumed against the wrong
/// graph" mistakes. Not cryptographic — checkpoints stay inside the
/// curator trust boundary.
pub(crate) fn graph_fingerprint(graph: &Graph) -> u64 {
    // FNV-1a, 64-bit: offset basis 0xcbf29ce484222325, prime
    // 0x100000001b3 — the exact standard parameters, since FORMAT.md
    // documents this field normatively for independent readers.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    mix(graph.num_nodes() as u64);
    for e in graph.edges() {
        mix(e.u().index() as u64);
        mix(e.v().index() as u64);
    }
    // The sign channel is part of edge identity for resume purposes —
    // mixed only when present, so unsigned graphs keep their pre-sign
    // fingerprints (existing checkpoints stay resumable).
    if let Some(signs) = graph.signs() {
        for &foe in signs {
            mix(u64::from(foe));
        }
    }
    h
}

/// Engine-owned state a checkpoint needs: RNG stream positions plus the
/// edge sampler permutation as of the epoch boundary being captured.
pub(crate) struct EngineStreams {
    /// RNG states in the engine's documented order.
    pub rngs: Vec<[u64; 4]>,
    /// The edge sampler's permutation at the boundary.
    pub edge_permutation: Vec<u32>,
}

/// The execution strategy behind the one Algorithm-3 schedule.
///
/// Exactly three implementations exist —
/// [`sequential::SequentialEngine`], [`sharded::ShardedEngine`], and
/// [`partitioned::PartitionedEngine`] — and [`run_schedule`] is their
/// only driver. An engine executes *steps*; it never sees the epoch
/// structure, iteration counts, accounting, or stopping rule.
///
/// Step methods are fallible because the out-of-core engine performs
/// spill I/O inside a step; the in-RAM engines always return `Ok`.
pub(crate) trait Engine {
    /// Which engine this is (persisted in checkpoints).
    fn kind(&self) -> EngineKind;
    /// The resolved worker-thread count (1 for sequential).
    fn threads(&self) -> usize;
    /// Produces the next discriminator batch in the fixed schedule order
    /// (positive, negative, positive, negative, ...).
    fn next_batch(&mut self, graph: &Graph) -> Result<DiscBatch, CoreError>;
    /// One discriminator update (Algorithm 3 line 8) over `batch`.
    fn disc_update(&mut self, core: &mut SessionCore, batch: &DiscBatch) -> Result<(), CoreError>;
    /// One generator iteration (Algorithm 3 lines 14–18).
    fn generator_update(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<(), CoreError>;
    /// The epoch's `|L_Nov|` diagnostic on one fresh batch.
    fn epoch_loss(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<f64, CoreError>;
    /// Writes any engine-resident model state back into `core` so that
    /// `core.emb` is authoritative (checkpoint capture, outcome
    /// assembly). No-op for the in-RAM engines, which mutate `core.emb`
    /// directly; the out-of-core engine materialises its partitions here.
    fn sync_core(&mut self, core: &mut SessionCore) -> Result<(), CoreError> {
        let _ = core;
        Ok(())
    }
    /// RNG/sampler state for checkpoint capture, valid only at an epoch
    /// boundary (the only place [`run_schedule`] calls it).
    fn streams(&self) -> EngineStreams;
}

/// Where the schedule currently stands. Engine-invariant by construction:
/// every field advances identically whichever engine executes the steps.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScheduleCursor {
    /// Completed epochs.
    pub epochs_done: usize,
    /// Discriminator updates applied.
    pub disc_updates: u64,
    /// Generator iterations applied.
    pub gen_updates: u64,
    /// Per-epoch `|L_Nov|` diagnostics.
    pub epoch_losses: Vec<f64>,
    /// Whether the privacy stopping rule ended training early.
    pub stopped_by_budget: bool,
}

/// The engine-independent half of a training session: configuration,
/// model parameters, accountant, Theorem-7 rates, and the schedule
/// cursor. Engines receive `&mut SessionCore` per step and own only their
/// execution context (RNG streams, pools, channels).
pub(crate) struct SessionCore {
    pub(crate) cfg: AdvSgmConfig,
    pub(crate) kind: SigmoidKind,
    pub(crate) emb: Embeddings,
    pub(crate) gens: GeneratorPair,
    pub(crate) accountant: Option<RdpAccountant>,
    pub(crate) gamma_pos: f64,
    pub(crate) gamma_neg: f64,
    pub(crate) cursor: ScheduleCursor,
}

impl SessionCore {
    /// Builds a fresh session: validates the configuration, initialises
    /// parameters from the shared init stream, and constructs the batch
    /// provider. Returns the provider and the *post-init* RNG for the
    /// engine (the sequential engine continues this stream; the sharded
    /// engine discards it and derives its own).
    pub(crate) fn new(
        graph: &Graph,
        cfg: AdvSgmConfig,
    ) -> Result<(Self, BatchProvider, SmallRng), CoreError> {
        cfg.validate()?;
        if graph.num_edges() == 0 {
            return Err(CoreError::Config {
                field: "graph",
                reason: "cannot train on a graph with no edges".into(),
            });
        }
        let kind = if cfg.variant.uses_constrained_sigmoid() {
            SigmoidKind::constrained(cfg.sigmoid_a, cfg.sigmoid_b)
        } else {
            SigmoidKind::Plain
        };
        let mut rng = seeded(derive_seed(cfg.seed, STREAM_INIT));
        let emb = Embeddings::init(graph.num_nodes(), cfg.dim, &mut rng);
        let gens = GeneratorPair::new(graph.num_nodes(), cfg.dim, &mut rng);
        let provider = BatchProvider::new_for_variant(
            graph,
            cfg.batch_size,
            cfg.negatives,
            cfg.negative_distribution,
            cfg.variant,
        )?;
        let accountant = cfg.variant.is_private().then(RdpAccountant::new);
        let (gamma_pos, gamma_neg) = (provider.gamma_pos(), provider.gamma_neg());
        Ok((
            Self {
                cfg,
                kind,
                emb,
                gens,
                accountant,
                gamma_pos,
                gamma_neg,
                cursor: ScheduleCursor::default(),
            },
            provider,
            rng,
        ))
    }

    /// Rebuilds a session mid-schedule from a checkpoint, validating the
    /// state against the graph it is being resumed on. Returns the
    /// provider with its sampler permutation restored; the caller restores
    /// the engine's RNG streams from `state.rng_streams`.
    pub(crate) fn resume(
        graph: &Graph,
        state: &CheckpointState,
    ) -> Result<(Self, BatchProvider), CoreError> {
        let bad = |reason: String| Err(CoreError::Checkpoint { reason });
        let cfg = state.config.clone();
        cfg.validate()?;

        if state.graph_nodes != graph.num_nodes() as u64
            || state.graph_edges != graph.num_edges() as u64
        {
            return bad(format!(
                "checkpoint was taken on a {}-node/{}-edge graph, resuming on {}/{}",
                state.graph_nodes,
                state.graph_edges,
                graph.num_nodes(),
                graph.num_edges()
            ));
        }
        if state.graph_fingerprint != graph_fingerprint(graph) {
            return bad("graph fingerprint mismatch: same size, different edges — \
                 resume requires the exact training graph"
                .into());
        }
        let (n, r) = (graph.num_nodes(), cfg.dim);
        for (name, m) in [
            ("w_in", &state.w_in),
            ("w_out", &state.w_out),
            ("gen_for_i", &state.gen_for_i),
            ("gen_for_j", &state.gen_for_j),
        ] {
            if m.shape() != (n, r) {
                return bad(format!(
                    "{name} has shape {:?}, expected ({n}, {r})",
                    m.shape()
                ));
            }
        }
        let epochs_done = state.epochs_done as usize;
        if epochs_done > cfg.epochs {
            return bad(format!(
                "{epochs_done} epochs completed exceeds the configured {}",
                cfg.epochs
            ));
        }
        if state.epoch_losses.len() != epochs_done {
            return bad(format!(
                "{} epoch losses recorded for {epochs_done} completed epochs",
                state.epoch_losses.len()
            ));
        }
        // Checkpoints are captured only at boundaries of non-stopped runs,
        // so the cursor is fully determined by the schedule.
        let expect_disc = (epochs_done * cfg.disc_iters * 2) as u64;
        if state.disc_updates != expect_disc {
            return bad(format!(
                "{} discriminator updates recorded, schedule implies {expect_disc}",
                state.disc_updates
            ));
        }
        let expect_gen = if cfg.variant.is_adversarial() {
            (epochs_done * cfg.gen_iters) as u64
        } else {
            0
        };
        if state.gen_updates != expect_gen {
            return bad(format!(
                "{} generator iterations recorded, schedule implies {expect_gen}",
                state.gen_updates
            ));
        }
        let expected_streams = match state.engine {
            EngineKind::Sequential | EngineKind::Partitioned => 1,
            EngineKind::Sharded => 2,
        };
        if state.rng_streams.len() != expected_streams {
            return bad(format!(
                "{} RNG streams for a {:?} checkpoint (need {expected_streams})",
                state.rng_streams.len(),
                state.engine
            ));
        }
        if cfg.variant.is_private() != state.accountant.is_some() {
            return bad(format!(
                "accountant state {} but variant {} {} private",
                if state.accountant.is_some() {
                    "present"
                } else {
                    "missing"
                },
                cfg.variant,
                if cfg.variant.is_private() {
                    "is"
                } else {
                    "is not"
                },
            ));
        }
        let accountant =
            match &state.accountant {
                None => None,
                Some(s) => Some(RdpAccountant::from_state(s.clone()).map_err(|e| {
                    CoreError::Checkpoint {
                        reason: format!("accountant state invalid: {e}"),
                    }
                })?),
            };

        let kind = if cfg.variant.uses_constrained_sigmoid() {
            SigmoidKind::constrained(cfg.sigmoid_a, cfg.sigmoid_b)
        } else {
            SigmoidKind::Plain
        };
        let mut provider = BatchProvider::new_for_variant(
            graph,
            cfg.batch_size,
            cfg.negatives,
            cfg.negative_distribution,
            cfg.variant,
        )?;
        provider
            .restore_edge_permutation(state.edge_permutation.clone())
            .map_err(|e| CoreError::Checkpoint {
                reason: format!("edge permutation invalid: {e}"),
            })?;
        let (gamma_pos, gamma_neg) = (provider.gamma_pos(), provider.gamma_neg());
        let emb = Embeddings::from_parts(state.w_in.clone(), state.w_out.clone());
        let gens = GeneratorPair::from_parts(state.gen_for_i.clone(), state.gen_for_j.clone());
        Ok((
            Self {
                cfg,
                kind,
                emb,
                gens,
                accountant,
                gamma_pos,
                gamma_neg,
                cursor: ScheduleCursor {
                    epochs_done,
                    disc_updates: state.disc_updates,
                    gen_updates: state.gen_updates,
                    epoch_losses: state.epoch_losses.clone(),
                    stopped_by_budget: false,
                },
            },
            provider,
        ))
    }

    /// The accountant's spend against the configured target, for hook
    /// events (`None` for non-private variants).
    fn spend(&self) -> Result<Option<SpendSnapshot>, CoreError> {
        match &self.accountant {
            None => Ok(None),
            Some(acc) => Ok(Some(acc.snapshot(self.cfg.epsilon, self.cfg.delta)?)),
        }
    }

    /// Consumes the session into the public outcome — the one place a
    /// [`TrainOutcome`] is assembled.
    pub(crate) fn into_outcome(self) -> Result<TrainOutcome, CoreError> {
        let (epsilon_spent, delta_spent) = match &self.accountant {
            None => (None, None),
            Some(acc) => {
                let snap = acc.snapshot(self.cfg.epsilon, self.cfg.delta)?;
                (Some(snap.epsilon_spent), Some(snap.delta_spent))
            }
        };
        Ok(TrainOutcome {
            context_vectors: self.emb.w_out().clone(),
            node_vectors: self.emb.into_node_vectors(),
            variant: self.cfg.variant,
            epochs_run: self.cursor.epochs_done,
            disc_updates: self.cursor.disc_updates,
            stopped_by_budget: self.cursor.stopped_by_budget,
            epsilon_spent,
            delta_spent,
            epoch_losses: self.cursor.epoch_losses,
        })
    }
}

/// Captures a checkpoint at the current (epoch-boundary) cursor.
fn capture_checkpoint(core: &SessionCore, engine: &dyn Engine, graph: &Graph) -> CheckpointState {
    let streams = engine.streams();
    let mut config = core.cfg.clone();
    // Pin the resolved width so resume cannot drift with ADVSGM_THREADS.
    config.num_threads = engine.threads();
    CheckpointState {
        config,
        graph_nodes: graph.num_nodes() as u64,
        graph_edges: graph.num_edges() as u64,
        graph_fingerprint: graph_fingerprint(graph),
        epochs_done: core.cursor.epochs_done as u64,
        disc_updates: core.cursor.disc_updates,
        gen_updates: core.cursor.gen_updates,
        epoch_losses: core.cursor.epoch_losses.clone(),
        w_in: core.emb.w_in().clone(),
        w_out: core.emb.w_out().clone(),
        gen_for_i: core.gens.for_i.weights().clone(),
        gen_for_j: core.gens.for_j.weights().clone(),
        accountant: core.accountant.as_ref().map(RdpAccountant::state),
        engine: engine.kind(),
        rng_streams: streams.rngs,
        edge_permutation: streams.edge_permutation,
    }
}

/// The Algorithm-3 schedule — the **only** implementation of the epoch /
/// discriminator-iteration / budget-stop loop in the workspace. Both
/// engines execute under it; both facades drive it.
///
/// Resume-aware: the loop starts at `core.cursor.epochs_done`, so a
/// session restored from a [`CheckpointState`] continues exactly where the
/// interrupted run left off.
pub(crate) fn run_schedule(
    core: &mut SessionCore,
    engine: &mut dyn Engine,
    graph: &Graph,
    hooks: &mut dyn TrainHooks,
) -> Result<(), CoreError> {
    let epochs = core.cfg.epochs;
    let may_checkpoint = hooks.may_checkpoint();
    'training: for epoch in core.cursor.epochs_done..epochs {
        for _ in 0..core.cfg.disc_iters {
            // One Algorithm 2 iteration: the positive batch EB, then the
            // negative batch EBk — two *separate* mechanism invocations so
            // their amplification rates compose cleanly (Theorem 7).
            for gamma in [core.gamma_pos, core.gamma_neg] {
                let batch = engine.next_batch(graph)?;
                engine.disc_update(core, &batch)?;
                core.cursor.disc_updates += 1;
                if record_and_check(&mut core.accountant, &core.cfg, gamma)? {
                    core.cursor.stopped_by_budget = true;
                    hooks.on_epoch(&EpochEvent {
                        epoch,
                        epochs_total: epochs,
                        loss: None,
                        disc_updates: core.cursor.disc_updates,
                        spend: core.spend()?,
                        stop: Some(StopReason::BudgetExhausted),
                    });
                    break 'training;
                }
            }
        }
        if core.cfg.variant.is_adversarial() {
            for _ in 0..core.cfg.gen_iters {
                engine.generator_update(core, graph)?;
                core.cursor.gen_updates += 1;
            }
        }
        let loss = engine.epoch_loss(core, graph)?;
        core.cursor.epochs_done += 1;
        core.cursor.epoch_losses.push(loss);
        let finished = core.cursor.epochs_done == epochs;
        let mut control = hooks.on_epoch(&EpochEvent {
            epoch,
            epochs_total: epochs,
            loss: Some(loss),
            disc_updates: core.cursor.disc_updates,
            spend: core.spend()?,
            stop: finished.then_some(StopReason::Completed),
        });
        if may_checkpoint && hooks.wants_checkpoint(core.cursor.epochs_done) {
            // Out-of-core engines hold the embeddings in their slot pool;
            // make core.emb authoritative before capturing.
            engine.sync_core(core)?;
            let state = capture_checkpoint(core, engine, graph);
            if hooks.on_checkpoint(&state) == SessionControl::Stop {
                control = SessionControl::Stop;
            }
        }
        if control == SessionControl::Stop && !finished {
            break 'training;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;

    #[test]
    fn fingerprint_is_sensitive_to_structure() {
        let a = karate_club();
        let b = karate_club();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        let smaller =
            Graph::from_parts(a.num_nodes(), a.edges()[..a.num_edges() - 1].to_vec(), None);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&smaller));
    }

    #[test]
    fn no_hooks_defaults_are_inert() {
        let mut h = NoHooks;
        let event = EpochEvent {
            epoch: 0,
            epochs_total: 1,
            loss: Some(1.0),
            disc_updates: 2,
            spend: None,
            stop: None,
        };
        assert_eq!(h.on_epoch(&event), SessionControl::Continue);
        assert!(!h.wants_checkpoint(1));
    }
}
