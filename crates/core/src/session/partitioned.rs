//! The partitioned [`Engine`]: out-of-core execution (DESIGN.md §14).
//!
//! Executes the same Algorithm-3 steps as the sequential engine while
//! keeping at most **two** embedding partitions in memory — one `W_in`
//! bucket and one `W_out` bucket — swapped through a fixed-size slot pool
//! that spills evicted partitions to disk. The headline contract is
//! *bitwise identity*: at a fixed seed the released embeddings, epoch
//! losses, and privacy spend are identical to the sequential trainer's
//! for every partition count and thread count.
//!
//! That identity holds because every step is a *replay* of the sequential
//! step, split into three phases:
//!
//! 1. **Phase A (draw)** — all RNG-consuming work (batch sampling, fake
//!    neighbors, noise vectors) runs on the single sequential stream in
//!    the sequential engine's exact program order. Embedding *reads*
//!    consume no randomness, so deferring them cannot shift a draw.
//! 2. **Phase B (compute)** — per-pair work is grouped by the bucket
//!    pair it touches (a `BTreeMap` keyed by `(bucket(i), bucket(j))`,
//!    i.e. the row-major bucket-pair schedule with empty pairs skipped);
//!    each group acquires its two slots once and computes *pure* per-item
//!    results, stored back at the item's original batch index. The
//!    results are chunk-invariant, so a thread pool may compute them.
//! 3. **Phase C (fold)** — the floating-point accumulations (per-row
//!    gradient sums, the loss fold) run over the per-item results in
//!    original batch order — exactly the association the sequential
//!    engine uses.
//!
//! All embedding reads in a step see the pre-update snapshot (the
//! sequential engine also reads everything before writing anything), and
//! the final apply updates each touched row exactly once with identical
//! arithmetic ([`step_row`]), so apply order across distinct rows is
//! immaterial — grouping the applies by bucket is free.
//!
//! The generator tables and the graph's edge list stay RAM-resident: the
//! embedding matrices dominate the model's footprint (two dense
//! `n x r` matrices against the generators' two), and the scope of this
//! engine is bounding *embedding* residency; see DESIGN.md §14.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use advsgm_graph::{Graph, NodeBuckets};
use advsgm_linalg::rng::{gaussian_vec, rng_state};
use advsgm_linalg::{backend, vector, DenseMatrix};
use advsgm_parallel::ThreadPool;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::error::CoreError;
use crate::loss::{fold_novel_loss, negative_dot, positive_terms, PositiveTerms};
use crate::model::embeddings::step_row;
use crate::model::generator::FakeNeighbor;
use crate::model::Embeddings;
use crate::partitioned::SlotPoolStats;
use crate::sampler::{BatchProvider, DiscBatch};
use crate::session::{
    accumulate, clipped_pair_grads, gradient_noise_std, Engine, EngineKind, EngineStreams, PairCtx,
    PairFakes, RowAcc, SessionCore,
};
use crate::variants::ModelVariant;
use crate::weighting::WeightMode;

/// Distinguishes spill directories of concurrently-built engines within
/// one process (the process id distinguishes across processes).
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Which embedding matrix a slot holds a bucket of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// A `W_in` (node-vector) bucket.
    In,
    /// A `W_out` (context-vector) bucket.
    Out,
}

impl Role {
    fn file_prefix(self) -> &'static str {
        match self {
            Role::In => "in",
            Role::Out => "out",
        }
    }
}

/// One resident embedding partition.
struct Slot {
    /// Which bucket the rows belong to.
    bucket: usize,
    /// The bucket's rows, row-major, `len_of(bucket) * dim` values.
    rows: Vec<f64>,
    /// Whether the rows have been written since loading (evicting a clean
    /// slot skips the spill write).
    dirty: bool,
}

/// The embedding matrices, bucketed by node range, with at most one
/// resident bucket per role — a two-slot pool by construction.
///
/// Evicted buckets live as raw little-endian `f64` files under a
/// process-unique temporary directory; the byte round-trip is exact, so
/// spilling cannot perturb the trajectory.
struct PartitionedEmbeddings {
    buckets: NodeBuckets,
    dim: usize,
    spill_dir: PathBuf,
    in_slot: Option<Slot>,
    out_slot: Option<Slot>,
    stats: Arc<SlotPoolStats>,
}

impl PartitionedEmbeddings {
    /// Spills every bucket of `emb` to disk and starts with both slots
    /// empty; `emb` is consumed (the full matrices stop existing in RAM).
    fn new(
        emb: Embeddings,
        buckets: NodeBuckets,
        stats: Arc<SlotPoolStats>,
    ) -> Result<Self, CoreError> {
        let dim = emb.dim();
        let spill_dir = std::env::temp_dir().join(format!(
            "advsgm-ooc-{}-{}",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&spill_dir)?;
        let this = Self {
            buckets,
            dim,
            spill_dir,
            in_slot: None,
            out_slot: None,
            stats,
        };
        for b in 0..buckets.count() {
            let range = this.buckets.range(b);
            this.write_spill(
                Role::In,
                b,
                &emb.w_in().as_slice()[range.start * dim..range.end * dim],
            )?;
            this.write_spill(
                Role::Out,
                b,
                &emb.w_out().as_slice()[range.start * dim..range.end * dim],
            )?;
        }
        Ok(this)
    }

    fn spill_path(&self, role: Role, bucket: usize) -> PathBuf {
        self.spill_dir
            .join(format!("{}-{bucket}.part", role.file_prefix()))
    }

    fn write_spill(&self, role: Role, bucket: usize, rows: &[f64]) -> Result<(), CoreError> {
        let mut bytes = Vec::with_capacity(rows.len() * 8);
        for v in rows {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        fs::write(self.spill_path(role, bucket), bytes)?;
        Ok(())
    }

    fn read_spill(&self, role: Role, bucket: usize) -> Result<Vec<f64>, CoreError> {
        let bytes = fs::read(self.spill_path(role, bucket))?;
        let expected = self.buckets.len_of(bucket) * self.dim * 8;
        if bytes.len() != expected {
            return Err(CoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "partition spill file for {}-{bucket} holds {} bytes, expected {expected}",
                    role.file_prefix(),
                    bytes.len()
                ),
            )));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    fn slot(&self, role: Role) -> &Option<Slot> {
        match role {
            Role::In => &self.in_slot,
            Role::Out => &self.out_slot,
        }
    }

    fn slot_mut(&mut self, role: Role) -> &mut Option<Slot> {
        match role {
            Role::In => &mut self.in_slot,
            Role::Out => &mut self.out_slot,
        }
    }

    /// Makes `bucket` resident in the role's slot: a no-op when already
    /// resident, otherwise evict (writing back only if dirty) and load.
    fn acquire(&mut self, role: Role, bucket: usize) -> Result<(), CoreError> {
        if let Some(s) = self.slot(role) {
            if s.bucket == bucket {
                return Ok(());
            }
        }
        if let Some(s) = self.slot_mut(role).take() {
            if s.dirty {
                self.write_spill(role, s.bucket, &s.rows)?;
            }
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            self.stats.resident.fetch_sub(1, Ordering::Relaxed);
        }
        let rows = self.read_spill(role, bucket)?;
        *self.slot_mut(role) = Some(Slot {
            bucket,
            rows,
            dirty: false,
        });
        self.stats.loads.fetch_add(1, Ordering::Relaxed);
        let resident = self.stats.resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.high_water.fetch_max(resident, Ordering::Relaxed);
        Ok(())
    }

    /// Read access to a row whose bucket is resident (acquire first).
    fn row(&self, role: Role, node: usize) -> &[f64] {
        let s = self
            .slot(role)
            .as_ref()
            .expect("slot not resident; acquire first");
        debug_assert_eq!(
            s.bucket,
            self.buckets.bucket_of(node),
            "wrong bucket resident"
        );
        let start = self.buckets.range(s.bucket).start;
        let off = (node - start) * self.dim;
        &s.rows[off..off + self.dim]
    }

    fn in_row(&self, node: usize) -> &[f64] {
        self.row(Role::In, node)
    }

    fn out_row(&self, node: usize) -> &[f64] {
        self.row(Role::Out, node)
    }

    /// Write access to a row whose bucket is resident; marks the slot
    /// dirty so eviction writes it back.
    fn row_mut(&mut self, role: Role, node: usize) -> &mut [f64] {
        let dim = self.dim;
        let bucket = self.buckets.bucket_of(node);
        let start = self.buckets.range(bucket).start;
        let s = self
            .slot_mut(role)
            .as_mut()
            .expect("slot not resident; acquire first");
        debug_assert_eq!(s.bucket, bucket, "wrong bucket resident");
        s.dirty = true;
        let off = (node - start) * dim;
        &mut s.rows[off..off + dim]
    }

    /// Rebuilds the full matrices: resident slots are authoritative,
    /// everything else comes from the spill files. Leaves the pool and
    /// its counters untouched.
    fn snapshot(&self) -> Result<Embeddings, CoreError> {
        let n = self.buckets.num_nodes();
        let mut w_in = Vec::with_capacity(n * self.dim);
        let mut w_out = Vec::with_capacity(n * self.dim);
        for b in 0..self.buckets.count() {
            self.collect_bucket(Role::In, b, &mut w_in)?;
            self.collect_bucket(Role::Out, b, &mut w_out)?;
        }
        let w_in = DenseMatrix::from_vec(n, self.dim, w_in).expect("snapshot shape");
        let w_out = DenseMatrix::from_vec(n, self.dim, w_out).expect("snapshot shape");
        Ok(Embeddings::from_parts(w_in, w_out))
    }

    fn collect_bucket(
        &self,
        role: Role,
        bucket: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError> {
        match self.slot(role) {
            Some(s) if s.bucket == bucket => out.extend_from_slice(&s.rows),
            _ => out.extend_from_slice(&self.read_spill(role, bucket)?),
        }
        Ok(())
    }
}

impl Drop for PartitionedEmbeddings {
    fn drop(&mut self) {
        // Best-effort cleanup; a leaked temp directory is not worth a panic.
        let _ = fs::remove_dir_all(&self.spill_dir);
    }
}

/// An empty placeholder for `core.emb` while the partitions own the data.
fn empty_embeddings() -> Embeddings {
    Embeddings::from_parts(DenseMatrix::zeros(0, 0), DenseMatrix::zeros(0, 0))
}

/// Maps `f` over `items`, preserving order; uses the pool when present.
/// Results are independent of the chunking, so thread count cannot change
/// them.
fn map_indexed<T, R>(
    pool: &mut Option<ThreadPool>,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    match pool {
        Some(p) => {
            let chunk_len = items.len().div_ceil(p.threads()).max(1);
            p.map_chunks(items, chunk_len, |_k, offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, item)| f(offset + i, item))
                    .collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect()
        }
        None => items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect(),
    }
}

/// Out-of-core step execution replaying the sequential trajectory
/// (module docs have the phase structure and determinism argument).
pub(crate) struct PartitionedEngine {
    /// Algorithm-2 batch provisioning, identical to the sequential engine's.
    provider: BatchProvider,
    /// The one RNG stream, in the sequential engine's draw order.
    rng: SmallRng,
    /// The negative half of a sampled iteration, buffered between the two
    /// `next_batch` calls of one discriminator iteration.
    pending_neg: Option<DiscBatch>,
    /// The bucketed embeddings behind the two-slot pool.
    parts: PartitionedEmbeddings,
    /// Worker pool for Phase-B computation; `None` runs serially.
    pool: Option<ThreadPool>,
    threads: usize,
}

impl PartitionedEngine {
    /// Steals `core.emb` into the slot pool (leaving an empty placeholder)
    /// and wraps the provider plus the post-init RNG stream.
    pub(crate) fn new(
        core: &mut SessionCore,
        provider: BatchProvider,
        rng: SmallRng,
        partitions: usize,
        stats: Arc<SlotPoolStats>,
    ) -> Result<Self, CoreError> {
        let threads = core.cfg.effective_threads();
        let buckets = NodeBuckets::new(core.emb.num_nodes(), partitions)?;
        let emb = std::mem::replace(&mut core.emb, empty_embeddings());
        let parts = PartitionedEmbeddings::new(emb, buckets, stats)?;
        let pool = (threads > 1).then(|| ThreadPool::new(threads));
        Ok(Self {
            provider,
            rng,
            pending_neg: None,
            parts,
            pool,
            threads,
        })
    }

    /// Drops the full-matrix copy a checkpoint's [`Engine::sync_core`]
    /// left in `core.emb`, restoring the two-partition residency bound.
    /// The slots and spill files remain authoritative throughout.
    fn reclaim(core: &mut SessionCore) {
        if core.emb.num_nodes() != 0 {
            core.emb = empty_embeddings();
        }
    }
}

impl Engine for PartitionedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Partitioned
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn next_batch(&mut self, graph: &Graph) -> Result<DiscBatch, CoreError> {
        match self.pending_neg.take() {
            Some(neg) => Ok(neg),
            None => {
                let (pos, neg) = self.provider.sample_disc_iteration(graph, &mut self.rng)?;
                self.pending_neg = Some(neg);
                Ok(pos)
            }
        }
    }

    /// One discriminator update, replayed (module docs): fakes and noise
    /// in Phase A, clipped per-pair gradients per bucket pair in Phase B,
    /// pair-order accumulation in Phase C, per-bucket apply.
    fn disc_update(&mut self, core: &mut SessionCore, batch: &DiscBatch) -> Result<(), CoreError> {
        Self::reclaim(core);
        let r = core.cfg.dim;
        let variant = core.cfg.variant;
        let clip = core.cfg.clip;
        // Per-batch shared noise vectors (Theorem 6's N_{D,1}, N_{D,2}).
        let noise_std = gradient_noise_std(&core.cfg);
        let n_in = gaussian_vec(&mut self.rng, noise_std, r);
        let n_out = gaussian_vec(&mut self.rng, noise_std, r);

        let count = batch.pairs.len();
        debug_assert!(count > 0, "empty batch");

        // Phase A: fake neighbors and batch means, in pair order on the
        // one stream — exactly the sequential engine's draw sequence.
        let adversarial = variant.is_adversarial();
        let mut fakes_j: Vec<Vec<f64>> = Vec::new();
        let mut fakes_i: Vec<Vec<f64>> = Vec::new();
        let mut mean_j = vec![0.0; r];
        let mut mean_i = vec![0.0; r];
        if adversarial {
            for &(i, j) in &batch.pairs {
                let fj = core.gens.for_i.generate(j, &mut self.rng).v;
                let fi = core.gens.for_j.generate(i, &mut self.rng).v;
                vector::add_assign(&mut mean_j, &fj);
                vector::add_assign(&mut mean_i, &fi);
                fakes_j.push(fj);
                fakes_i.push(fi);
            }
            vector::scale(&mut mean_j, 1.0 / count as f64);
            vector::scale(&mut mean_i, 1.0 / count as f64);
        }

        // Phase B: group pairs by the bucket pair they read, acquire the
        // two slots per group, and compute each pair's clipped gradients
        // (pure, RNG-free) back into its original index.
        let buckets = self.parts.buckets;
        let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (idx, &(i, j)) in batch.pairs.iter().enumerate() {
            groups
                .entry((buckets.bucket_of(i), buckets.bucket_of(j)))
                .or_default()
                .push(idx);
        }
        let kind = core.kind;
        let mut grads: Vec<Option<(Vec<f64>, Vec<f64>)>> = vec![None; count];
        for (&(bi, bj), idxs) in &groups {
            self.parts.acquire(Role::In, bi)?;
            self.parts.acquire(Role::Out, bj)?;
            let parts = &self.parts;
            let pairs = &batch.pairs;
            let (fakes_j, fakes_i) = (&fakes_j, &fakes_i);
            let (mean_j, mean_i) = (&mean_j, &mean_i);
            let computed = map_indexed(&mut self.pool, idxs, |_pos, &idx| {
                let (i, j) = pairs[idx];
                let pair_fakes = adversarial.then(|| PairFakes {
                    fake_j: &fakes_j[idx],
                    fake_i: &fakes_i[idx],
                    mean_j,
                    mean_i,
                });
                clipped_pair_grads(
                    kind,
                    variant,
                    clip,
                    PairCtx::of(batch, idx),
                    parts.in_row(i),
                    parts.out_row(j),
                    pair_fakes,
                )
            });
            for (&idx, g) in idxs.iter().zip(computed) {
                grads[idx] = Some(g);
            }
        }

        // Phase C: accumulate per-row sums in original pair order — the
        // sequential engine's exact floating-point association.
        let mut acc_in: RowAcc = HashMap::new();
        let mut acc_out: RowAcc = HashMap::new();
        for (idx, &(i, j)) in batch.pairs.iter().enumerate() {
            let (gi, gj) = grads[idx].take().expect("every pair computed");
            accumulate(&mut acc_in, i, gi);
            accumulate(&mut acc_out, j, gj);
        }

        // Apply, grouped by bucket so each slot is acquired once. Every
        // touched row is updated exactly once with the sequential
        // arithmetic, and distinct-row updates commute, so this ordering
        // is bitwise-equivalent to the sequential apply.
        let eta = core.cfg.eta_d;
        let project = core.cfg.project_rows && variant != ModelVariant::Sgm;
        type BucketRows = BTreeMap<usize, Vec<(usize, (Vec<f64>, usize))>>;
        for (role, acc, noise) in [(Role::In, acc_in, &n_in), (Role::Out, acc_out, &n_out)] {
            let mut by_bucket: BucketRows = BTreeMap::new();
            for (node, entry) in acc {
                by_bucket
                    .entry(buckets.bucket_of(node))
                    .or_default()
                    .push((node, entry));
            }
            for (b, mut rows) in by_bucket {
                self.parts.acquire(role, b)?;
                // Ascending row order within the bucket (DESIGN.md §15):
                // the resident slot is walked mostly sequentially. Rows
                // are distinct, so order across them is bitwise-neutral.
                rows.sort_unstable_by_key(|&(node, _)| node);
                for (node, (mut g, c)) in rows {
                    backend::fused_axpy_scale(&mut g, c as f64, noise, 1.0 / c as f64);
                    step_row(self.parts.row_mut(role, node), eta, &g, project);
                }
            }
        }
        Ok(())
    }

    /// One generator iteration, replayed: sampling and fake generation in
    /// Phase A (per sample: edge, orientation, `f1`, `f2` — the
    /// sequential order, since nothing between them draws), embedding
    /// gathers per single-role bucket group in Phase B, sample-order
    /// gradient accumulation in Phase C. No embedding is written.
    fn generator_update(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<(), CoreError> {
        Self::reclaim(core);
        let r = core.cfg.dim;
        let sample_count = core.cfg.batch_size * (core.cfg.negatives + 1);
        let noise_std = gradient_noise_std(&core.cfg);
        let ng1 = gaussian_vec(&mut self.rng, noise_std, r);
        let ng2 = gaussian_vec(&mut self.rng, noise_std, r);

        // Phase A.
        let edges = graph.edges();
        let mut samples: Vec<(usize, usize, FakeNeighbor, FakeNeighbor)> =
            Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            let e = edges[self.rng.gen_range(0..edges.len())];
            let (s, t) = if self.rng.gen::<bool>() {
                (e.u().index(), e.v().index())
            } else {
                (e.v().index(), e.u().index())
            };
            let f1 = core.gens.for_i.generate(t, &mut self.rng);
            let f2 = core.gens.for_j.generate(s, &mut self.rng);
            samples.push((s, t, f1, f2));
        }

        // Phase B: gather the embedding rows each sample reads, one
        // single-role bucket group at a time (v_i needs W_in[s], v_j
        // needs W_out[t]; a sample's two reads live in unrelated buckets,
        // so they are gathered in separate passes).
        let buckets = self.parts.buckets;
        let mut vi: Vec<Vec<f64>> = vec![Vec::new(); sample_count];
        let mut vj: Vec<Vec<f64>> = vec![Vec::new(); sample_count];
        let mut by_s: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut by_t: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (idx, &(s, t, _, _)) in samples.iter().enumerate() {
            by_s.entry(buckets.bucket_of(s)).or_default().push(idx);
            by_t.entry(buckets.bucket_of(t)).or_default().push(idx);
        }
        for (&b, idxs) in &by_s {
            self.parts.acquire(Role::In, b)?;
            for &idx in idxs {
                vi[idx] = self.parts.in_row(samples[idx].0).to_vec();
            }
        }
        for (&b, idxs) in &by_t {
            self.parts.acquire(Role::Out, b)?;
            for &idx in idxs {
                vj[idx] = self.parts.out_row(samples[idx].1).to_vec();
            }
        }

        // Phase B continued: per-sample upstream gradients (pure).
        let kind = core.kind;
        let (vi, vj) = (&vi, &vj);
        let (ng1, ng2) = (&ng1, &ng2);
        let ups = map_indexed(&mut self.pool, &samples, |idx, (_s, _t, f1, f2)| {
            let (s1_fake, s1_noise) = backend::dot2(&vi[idx], &f1.v, ng1);
            let s1 = s1_fake + s1_noise;
            let c1 = -kind.neg_log_one_minus_grad(s1);
            let up1 = vector::scaled(c1, &vi[idx]);
            let (s2_fake, s2_noise) = backend::dot2(&vj[idx], &f2.v, ng2);
            let s2 = s2_fake + s2_noise;
            let c2 = -kind.neg_log_one_minus_grad(s2);
            let up2 = vector::scaled(c2, &vj[idx]);
            (up1, up2)
        });

        // Phase C: accumulate generator gradients in sample order.
        let mut grads_j: RowAcc = HashMap::new();
        let mut grads_i: RowAcc = HashMap::new();
        for (idx, (_s, _t, f1, f2)) in samples.iter().enumerate() {
            core.gens
                .for_i
                .accumulate_grad(f1, &ups[idx].0, &mut grads_j);
            core.gens
                .for_j
                .accumulate_grad(f2, &ups[idx].1, &mut grads_i);
        }
        core.gens.for_i.step(core.cfg.eta_g, &grads_j);
        core.gens.for_j.step(core.cfg.eta_g, &grads_i);
        Ok(())
    }

    /// Per-epoch `|L_Nov|` on one fresh batch, replayed through the
    /// order-fixed fold split of [`crate::loss`].
    fn epoch_loss(&mut self, core: &mut SessionCore, graph: &Graph) -> Result<f64, CoreError> {
        Self::reclaim(core);
        let (pos, pos_signs) = self.provider.positives_with_signs(graph, &mut self.rng)?;
        let negs = self.provider.negatives(&pos, &mut self.rng);
        let mode = if core.cfg.variant.is_adversarial() {
            WeightMode::InverseS
        } else {
            WeightMode::Fixed(0.0)
        };
        // Same panic point as `novel_loss_batch`, before any draw.
        assert!(!pos.is_empty(), "need at least one positive pair");
        let r = core.cfg.dim;
        let noise_std = gradient_noise_std(&core.cfg);
        let n1 = gaussian_vec(&mut self.rng, noise_std.max(0.0), r);
        let n2 = gaussian_vec(&mut self.rng, noise_std.max(0.0), r);

        // Phase A: fresh fakes per positive, in batch order.
        let mut fakes: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(pos.len());
        for e in &pos {
            let fake_j = core.gens.for_i.generate(e.v().index(), &mut self.rng).v;
            let fake_i = core.gens.for_j.generate(e.u().index(), &mut self.rng).v;
            fakes.push((fake_j, fake_i));
        }

        // Phase B: per-pair scalar terms, grouped by bucket pair.
        let buckets = self.parts.buckets;
        let mut pos_groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (idx, e) in pos.iter().enumerate() {
            pos_groups
                .entry((
                    buckets.bucket_of(e.u().index()),
                    buckets.bucket_of(e.v().index()),
                ))
                .or_default()
                .push(idx);
        }
        let mut terms: Vec<Option<PositiveTerms>> = vec![None; pos.len()];
        for (&(bu, bv), idxs) in &pos_groups {
            self.parts.acquire(Role::In, bu)?;
            self.parts.acquire(Role::Out, bv)?;
            let parts = &self.parts;
            let (pos, fakes) = (&pos, &fakes);
            let (n1, n2) = (&n1, &n2);
            let pos_signs = &pos_signs;
            let computed = map_indexed(&mut self.pool, idxs, |_pos, &idx| {
                let e = &pos[idx];
                positive_terms(
                    parts.in_row(e.u().index()),
                    parts.out_row(e.v().index()),
                    &fakes[idx].0,
                    &fakes[idx].1,
                    n1,
                    n2,
                    pos_signs.get(idx).copied().unwrap_or(false),
                )
            });
            for (&idx, t) in idxs.iter().zip(computed) {
                terms[idx] = Some(t);
            }
        }
        let mut neg_groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (idx, p) in negs.iter().enumerate() {
            neg_groups
                .entry((
                    buckets.bucket_of(p.source.index()),
                    buckets.bucket_of(p.negative.index()),
                ))
                .or_default()
                .push(idx);
        }
        let mut neg_dots: Vec<f64> = vec![0.0; negs.len()];
        for (&(bs, bn), idxs) in &neg_groups {
            self.parts.acquire(Role::In, bs)?;
            self.parts.acquire(Role::Out, bn)?;
            for &idx in idxs {
                let p = &negs[idx];
                neg_dots[idx] = negative_dot(
                    self.parts.in_row(p.source.index()),
                    self.parts.out_row(p.negative.index()),
                );
            }
        }

        // Phase C: the order-fixed fold.
        let terms: Vec<PositiveTerms> = terms
            .into_iter()
            .map(|t| t.expect("every positive computed"))
            .collect();
        Ok(fold_novel_loss(core.kind, mode, &terms, &neg_dots).abs())
    }

    fn sync_core(&mut self, core: &mut SessionCore) -> Result<(), CoreError> {
        core.emb = self.parts.snapshot()?;
        Ok(())
    }

    fn streams(&self) -> EngineStreams {
        debug_assert!(
            self.pending_neg.is_none(),
            "checkpoint capture mid-iteration"
        );
        EngineStreams {
            rngs: vec![rng_state(&self.rng)],
            edge_permutation: self.provider.edge_permutation().to_vec(),
        }
    }
}
