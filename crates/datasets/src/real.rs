//! Loaders for the genuine dataset files.
//!
//! If you download the original datasets (SNAP's `ego-Facebook` /
//! `soc-Epinions1`, BioGRID PPI, BlogCatalog3, the Wiki hyperlink dump, or
//! the AMiner DBLP citation graph), convert them to whitespace edge lists
//! and load them here; everything downstream consumes the same
//! [`advsgm_graph::Graph`] the synthetic stand-ins produce.

use std::path::Path;

use advsgm_graph::io::{read_edge_list_file, read_labels};
use advsgm_graph::{Graph, GraphError};

/// Loads a real dataset from an edge-list file and an optional label file,
/// validating against an expected node count if supplied.
///
/// # Errors
/// Propagates parse/I/O failures, and reports a count mismatch as
/// [`GraphError::InvalidParameter`].
pub fn load_real_dataset(
    edges_path: impl AsRef<Path>,
    labels_path: Option<&Path>,
    expected_nodes: Option<usize>,
) -> Result<Graph, GraphError> {
    let g = read_edge_list_file(edges_path, expected_nodes)?;
    if let Some(n) = expected_nodes {
        if g.num_nodes() != n {
            return Err(GraphError::InvalidParameter {
                name: "expected_nodes",
                reason: format!("file yielded {} nodes, expected {n}", g.num_nodes()),
            });
        }
    }
    match labels_path {
        None => Ok(g),
        Some(p) => {
            let f = std::fs::File::open(p)?;
            let labels = read_labels(f, g.num_nodes())?;
            Ok(Graph::from_parts(
                g.num_nodes(),
                g.edges().to_vec(),
                Some(labels),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("advsgm-datasets-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    #[test]
    fn loads_edges_and_labels() {
        let edges = write_temp("toy.edges", "# toy\n0 1\n1 2\n2 3\n");
        let labels = write_temp("toy.labels", "0 1\n1 1\n2 0\n3 0\n");
        let g = load_real_dataset(&edges, Some(labels.as_path()), Some(4)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.labels().unwrap(), &[1, 1, 0, 0]);
    }

    #[test]
    fn node_count_mismatch_reported() {
        let edges = write_temp("toy2.edges", "0 1\n");
        // Expecting 10 nodes forces the builder to 10; should succeed with
        // padding, so check the opposite direction: file exceeding bound errors.
        let g = load_real_dataset(&edges, None, Some(10)).unwrap();
        assert_eq!(g.num_nodes(), 10);
        let big = write_temp("toy3.edges", "0 99\n");
        assert!(load_real_dataset(&big, None, Some(10)).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_real_dataset("/nonexistent/nope.edges", None, None).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
