//! # advsgm-datasets
//!
//! The six evaluation datasets of the AdvSGM paper, as deterministic
//! synthetic stand-ins plus loaders for the genuine files.
//!
//! The paper evaluates on PPI, Facebook, Wiki, Blog, Epinions and DBLP,
//! none of which can be redistributed here. Each [`spec::DatasetSpec`]
//! records the published `|V|`, `|E|` and class count, and
//! [`synth::synthesize`] realises it as a degree-corrected planted-partition
//! graph with the same scale, heavy-tailed degrees, and (where the paper has
//! labels) community structure. DESIGN.md §1 argues why this preserves the
//! shape of every experiment. If you have the real files, [`real`] loads
//! them into the identical [`advsgm_graph::Graph`] type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod real;
pub mod registry;
pub mod spec;
pub mod synth;

pub use registry::{all_datasets, dataset_by_name, Dataset};
pub use spec::DatasetSpec;
pub use synth::synthesize;
