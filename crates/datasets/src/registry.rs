//! The six paper datasets, plus the signed polarity workload
//! (arXiv 2512.00307) that rides on the same registry.

use crate::spec::DatasetSpec;

/// Identifiers for the paper's evaluation datasets (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Human protein–protein interaction network: 3,890 nodes / 50 classes /
    /// 76,584 edges.
    Ppi,
    /// Facebook ego-network union: 4,039 nodes / 88,234 edges (no labels).
    Facebook,
    /// Wikipedia hyperlink network: 4,777 nodes / 40 classes / 92,517 edges.
    Wiki,
    /// BlogCatalog social network: 10,312 nodes / 39 classes / 333,983 edges.
    Blog,
    /// Epinions trust network: 75,879 nodes / 508,837 edges (no labels).
    Epinions,
    /// DBLP scholarly network: 2,244,021 nodes / 4,354,534 edges (no labels).
    Dblp,
    /// Synthetic signed (friend/foe) network with planted polarity
    /// communities — the "beyond the paper" workload for the sign-aware
    /// variants (arXiv 2512.00307). Intra-block edges are friends,
    /// inter-block edges foes, with 5% label noise.
    Polarity,
}

impl Dataset {
    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Ppi => "PPI",
            Dataset::Facebook => "Facebook",
            Dataset::Wiki => "Wiki",
            Dataset::Blog => "Blog",
            Dataset::Epinions => "Epinions",
            Dataset::Dblp => "DBLP",
            Dataset::Polarity => "Polarity",
        }
    }

    /// The stand-in specification with the published counts.
    ///
    /// Mixing/exponent choices: labeled datasets get strong communities
    /// (`mixing` 0.15) so that clustering has recoverable signal, matching
    /// the fact that the paper's MI values are well above chance; social
    /// networks get a heavier tail (exponent 2.3) than the biological PPI
    /// network (2.6), mirroring their published degree profiles.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Ppi => DatasetSpec {
                name: "PPI".into(),
                num_nodes: 3_890,
                num_edges: 76_584,
                num_classes: 50,
                num_blocks: 50,
                mixing: 0.15,
                degree_exponent: 2.6,
                seed: 0x9e37_0001,
                sign_flip: None,
            },
            Dataset::Facebook => DatasetSpec {
                name: "Facebook".into(),
                num_nodes: 4_039,
                num_edges: 88_234,
                num_classes: 0,
                num_blocks: 16,
                mixing: 0.08,
                degree_exponent: 2.3,
                seed: 0x9e37_0002,
                sign_flip: None,
            },
            Dataset::Wiki => DatasetSpec {
                name: "Wiki".into(),
                num_nodes: 4_777,
                num_edges: 92_517,
                num_classes: 40,
                num_blocks: 40,
                mixing: 0.25,
                degree_exponent: 2.4,
                seed: 0x9e37_0003,
                sign_flip: None,
            },
            Dataset::Blog => DatasetSpec {
                name: "Blog".into(),
                num_nodes: 10_312,
                num_edges: 333_983,
                num_classes: 39,
                num_blocks: 39,
                mixing: 0.2,
                degree_exponent: 2.3,
                seed: 0x9e37_0004,
                sign_flip: None,
            },
            Dataset::Epinions => DatasetSpec {
                name: "Epinions".into(),
                num_nodes: 75_879,
                num_edges: 508_837,
                num_classes: 0,
                num_blocks: 64,
                mixing: 0.2,
                degree_exponent: 2.2,
                seed: 0x9e37_0005,
                sign_flip: None,
            },
            Dataset::Dblp => DatasetSpec {
                name: "DBLP".into(),
                num_nodes: 2_244_021,
                num_edges: 4_354_534,
                num_classes: 0,
                num_blocks: 256,
                mixing: 0.15,
                degree_exponent: 2.5,
                seed: 0x9e37_0006,
                sign_flip: None,
            },
            Dataset::Polarity => DatasetSpec {
                name: "Polarity".into(),
                num_nodes: 2_000,
                num_edges: 12_000,
                num_classes: 4,
                num_blocks: 4,
                // Mixing is the planted foe fraction: high enough that
                // sign structure matters, low enough that communities
                // stay recoverable.
                mixing: 0.3,
                degree_exponent: 2.4,
                seed: 0x9e37_0007,
                sign_flip: Some(0.05),
            },
        }
    }

    /// Datasets used by each experiment family in the paper.
    pub fn link_prediction_sets() -> [Dataset; 6] {
        [
            Dataset::Ppi,
            Dataset::Facebook,
            Dataset::Wiki,
            Dataset::Blog,
            Dataset::Epinions,
            Dataset::Dblp,
        ]
    }

    /// The labeled datasets used for node clustering (Fig. 4).
    pub fn clustering_sets() -> [Dataset; 3] {
        [Dataset::Ppi, Dataset::Wiki, Dataset::Blog]
    }
}

/// All registered datasets: the six paper datasets in paper order, then
/// the signed polarity workload.
pub fn all_datasets() -> [Dataset; 7] {
    [
        Dataset::Ppi,
        Dataset::Facebook,
        Dataset::Wiki,
        Dataset::Blog,
        Dataset::Epinions,
        Dataset::Dblp,
        Dataset::Polarity,
    ]
}

/// Case-insensitive lookup by the paper name.
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    let lower = name.to_ascii_lowercase();
    all_datasets()
        .into_iter()
        .find(|d| d.name().to_ascii_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_counts_match_paper() {
        assert_eq!(Dataset::Ppi.spec().num_nodes, 3890);
        assert_eq!(Dataset::Ppi.spec().num_edges, 76_584);
        assert_eq!(Dataset::Ppi.spec().num_classes, 50);
        assert_eq!(Dataset::Facebook.spec().num_nodes, 4039);
        assert_eq!(Dataset::Facebook.spec().num_edges, 88_234);
        assert_eq!(Dataset::Wiki.spec().num_classes, 40);
        assert_eq!(Dataset::Blog.spec().num_edges, 333_983);
        assert_eq!(Dataset::Epinions.spec().num_nodes, 75_879);
        assert_eq!(Dataset::Dblp.spec().num_edges, 4_354_534);
    }

    #[test]
    fn labels_only_where_the_paper_has_them() {
        assert!(Dataset::Ppi.spec().has_labels());
        assert!(Dataset::Wiki.spec().has_labels());
        assert!(Dataset::Blog.spec().has_labels());
        assert!(!Dataset::Facebook.spec().has_labels());
        assert!(!Dataset::Epinions.spec().has_labels());
        assert!(!Dataset::Dblp.spec().has_labels());
    }

    #[test]
    fn clustering_sets_are_labeled() {
        for d in Dataset::clustering_sets() {
            assert!(d.spec().has_labels(), "{} unlabeled", d.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("ppi"), Some(Dataset::Ppi));
        assert_eq!(dataset_by_name("BLOG"), Some(Dataset::Blog));
        assert_eq!(dataset_by_name("polarity"), Some(Dataset::Polarity));
        assert_eq!(dataset_by_name("nope"), None);
    }

    #[test]
    fn polarity_is_the_only_signed_entry_and_stays_off_paper_sets() {
        for d in all_datasets() {
            assert_eq!(d.spec().is_signed(), d == Dataset::Polarity, "{}", d.name());
        }
        // The paper's experiment families are untouched by the new entry.
        assert!(!Dataset::link_prediction_sets().contains(&Dataset::Polarity));
        assert!(!Dataset::clustering_sets().contains(&Dataset::Polarity));
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<u64> = all_datasets().iter().map(|d| d.spec().seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }
}
