//! Spec → graph synthesis.

use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm_graph::generators::signed::{signed_sbm, SignedSbmConfig};
use advsgm_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::spec::DatasetSpec;

/// Realises a [`DatasetSpec`] as a degree-corrected planted-partition graph.
///
/// The generator seed is `spec.seed ^ run_seed`, so different experiment
/// repetitions (`run_seed`) see different graph realisations while any
/// single `(spec, run_seed)` pair is fully reproducible. Unlabeled datasets
/// keep the planted community structure but have their labels stripped,
/// matching the paper ("absence of labeled data" for Facebook, Epinions,
/// DBLP). Specs with a sign channel (`spec.sign_flip`) come back signed:
/// intra-block friends, inter-block foes, per-edge flip noise
/// ([`signed_sbm`]); the topology draw sequence is identical to the
/// unsigned generator's, so at a fixed seed the edge set is unchanged.
pub fn synthesize(spec: &DatasetSpec, run_seed: u64) -> Graph {
    let cfg = SbmConfig {
        num_nodes: spec.num_nodes,
        num_edges: spec.num_edges,
        num_blocks: spec.num_blocks.max(1),
        mixing: spec.mixing,
        degree_exponent: spec.degree_exponent,
    };
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let g = match spec.sign_flip {
        Some(flip) => signed_sbm(
            &SignedSbmConfig {
                base: cfg,
                flip_probability: flip,
            },
            &mut rng,
        ),
        None => degree_corrected_sbm(&cfg, &mut rng),
    };
    if spec.has_labels() {
        g
    } else {
        Graph::from_parts_signed(
            g.num_nodes(),
            g.edges().to_vec(),
            g.signs().map(<[bool]>::to_vec),
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Dataset;

    #[test]
    fn ppi_small_scale_matches_spec() {
        let spec = Dataset::Ppi.spec().scaled(0.1);
        let g = synthesize(&spec, 0);
        assert_eq!(g.num_nodes(), spec.num_nodes);
        assert_eq!(g.num_edges(), spec.num_edges);
        assert_eq!(g.num_classes(), spec.num_classes);
        g.check_invariants().unwrap();
    }

    #[test]
    fn unlabeled_dataset_has_no_labels() {
        let spec = Dataset::Facebook.spec().scaled(0.1);
        let g = synthesize(&spec, 0);
        assert!(g.labels().is_none());
    }

    #[test]
    fn run_seed_changes_realisation() {
        let spec = Dataset::Wiki.spec().scaled(0.05);
        let a = synthesize(&spec, 1);
        let b = synthesize(&spec, 2);
        assert_ne!(a.edges(), b.edges());
        // Same seed reproduces exactly.
        let c = synthesize(&spec, 1);
        assert_eq!(a.edges(), c.edges());
    }

    #[test]
    fn polarity_dataset_synthesizes_signed() {
        let spec = Dataset::Polarity.spec().scaled(0.25);
        let g = synthesize(&spec, 0);
        assert!(g.is_signed());
        assert!(g.labels().is_some(), "blocks double as classes");
        let foe_frac = g.num_foe_edges() as f64 / g.num_edges() as f64;
        // Planted foe fraction = mixing (0.3) +/- 5% flip noise.
        assert!((0.15..0.5).contains(&foe_frac), "foe fraction {foe_frac}");
        // Same seed, unsigned spec: identical topology.
        let mut unsigned = spec.clone();
        unsigned.sign_flip = None;
        let u = synthesize(&unsigned, 0);
        assert_eq!(u.edges(), g.edges());
        assert!(!u.is_signed());
    }

    #[test]
    fn degrees_heavy_tailed_at_scale() {
        let spec = Dataset::Blog.spec().scaled(0.1);
        let g = synthesize(&spec, 0);
        assert!(g.max_degree() as f64 > 3.0 * g.mean_degree());
    }
}
