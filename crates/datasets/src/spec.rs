//! Dataset specifications.

use serde::{Deserialize, Error, Serialize, Value};

/// The published statistics of one evaluation dataset, plus the generator
/// parameters used to synthesise its stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper (e.g. "PPI").
    pub name: String,
    /// Number of nodes `|V|`.
    pub num_nodes: usize,
    /// Number of undirected edges `|E|`.
    pub num_edges: usize,
    /// Number of label classes; 0 when the paper reports no labels
    /// (Facebook, Epinions, DBLP).
    pub num_classes: usize,
    /// Planted blocks used by the generator. Equals `num_classes` for
    /// labeled datasets; unlabeled datasets still get community structure
    /// (social graphs have it) but the labels are stripped.
    pub num_blocks: usize,
    /// Inter-block edge fraction for the generator.
    pub mixing: f64,
    /// Degree power-law exponent for the generator.
    pub degree_exponent: f64,
    /// Deterministic base seed for the generator.
    pub seed: u64,
    /// `Some(p)` stamps a friend/foe sign on every edge from the planted
    /// blocks (intra = friend, inter = foe), flipping each with
    /// probability `p` — the signed-graph workload of arXiv 2512.00307.
    /// `None` (the default, and what every pre-sign spec deserialises to)
    /// keeps the graph unsigned.
    pub sign_flip: Option<f64>,
}

// Hand-written (not derived) so that specs serialised before the sign
// channel existed still load: a missing `sign_flip` field reads as `None`
// instead of a missing-field error.
impl Serialize for DatasetSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("num_nodes".into(), self.num_nodes.to_value()),
            ("num_edges".into(), self.num_edges.to_value()),
            ("num_classes".into(), self.num_classes.to_value()),
            ("num_blocks".into(), self.num_blocks.to_value()),
            ("mixing".into(), self.mixing.to_value()),
            ("degree_exponent".into(), self.degree_exponent.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("sign_flip".into(), self.sign_flip.to_value()),
        ])
    }
}

impl Deserialize for DatasetSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if !matches!(v, Value::Object(_)) {
            return Err(Error::type_mismatch("object", v));
        }
        fn req<T: Deserialize>(v: &Value, name: &'static str) -> Result<T, Error> {
            T::from_value(
                v.get_field(name)
                    .ok_or_else(|| Error::missing_field(name))?,
            )
        }
        Ok(DatasetSpec {
            name: req(v, "name")?,
            num_nodes: req(v, "num_nodes")?,
            num_edges: req(v, "num_edges")?,
            num_classes: req(v, "num_classes")?,
            num_blocks: req(v, "num_blocks")?,
            mixing: req(v, "mixing")?,
            degree_exponent: req(v, "degree_exponent")?,
            seed: req(v, "seed")?,
            sign_flip: match v.get_field("sign_flip") {
                Some(f) => Option::<f64>::from_value(f)?,
                None => None,
            },
        })
    }
}

impl DatasetSpec {
    /// Whether the paper provides node labels for this dataset.
    pub fn has_labels(&self) -> bool {
        self.num_classes > 0
    }

    /// Mean degree `2|E|/|V|` implied by the published counts.
    pub fn mean_degree(&self) -> f64 {
        2.0 * self.num_edges as f64 / self.num_nodes as f64
    }

    /// A proportionally scaled copy (`scale` in `(0, 1]`), used so that
    /// paper-scale sweeps finish quickly by default. Node and edge counts
    /// scale linearly with floors that keep the generator well-posed; the
    /// class/block structure and mixing are preserved.
    ///
    /// Scaling nodes and edges by the same factor multiplies the *density*
    /// `|E|/|V|^2` by `1/scale`, which at small scales can exceed the
    /// planted blocks' pair capacity and destroy the community structure
    /// (the generator would be forced to emit mostly inter-block edges).
    /// The edge count is therefore additionally capped so that intra-block
    /// edges occupy at most half of the available intra-block pairs.
    ///
    /// # Panics
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn scaled(&self, scale: f64) -> DatasetSpec {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0,1], got {scale}"
        );
        if (scale - 1.0).abs() < f64::EPSILON {
            return self.clone();
        }
        let num_nodes = ((self.num_nodes as f64 * scale) as usize).max(300);
        // Blocks keep at least 12 members.
        let num_blocks = self.num_blocks.min((num_nodes / 12).max(1));
        let num_classes = if self.num_classes == 0 { 0 } else { num_blocks };
        // Intra-block capacity cap: intra edges <= 50% of intra pairs.
        let block = num_nodes / num_blocks.max(1);
        let intra_pairs = num_blocks * block * block.saturating_sub(1) / 2;
        let intra_fraction = (1.0 - self.mixing).max(0.05);
        let cap = ((0.5 * intra_pairs as f64) / intra_fraction) as usize;
        let target = (self.num_edges as f64 * scale) as usize;
        let num_edges = target.min(cap).max(2 * num_nodes);
        DatasetSpec {
            name: self.name.clone(),
            num_nodes,
            num_edges,
            num_classes,
            num_blocks,
            mixing: self.mixing,
            degree_exponent: self.degree_exponent,
            seed: self.seed,
            sign_flip: self.sign_flip,
        }
    }

    /// Whether the synthesised graph carries a friend/foe sign channel.
    pub fn is_signed(&self) -> bool {
        self.sign_flip.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "PPI".into(),
            num_nodes: 3890,
            num_edges: 76584,
            num_classes: 50,
            num_blocks: 50,
            mixing: 0.15,
            degree_exponent: 2.5,
            seed: 1,
            sign_flip: None,
        }
    }

    #[test]
    fn mean_degree_formula() {
        let s = spec();
        assert!((s.mean_degree() - 2.0 * 76584.0 / 3890.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_preserves_structure() {
        let s = spec().scaled(0.25);
        assert_eq!(s.name, "PPI");
        assert!(s.num_nodes < 3890 && s.num_nodes >= 200);
        assert!(s.num_edges >= 2 * s.num_nodes);
        assert!(s.num_blocks >= 1);
        assert_eq!(s.num_classes, s.num_blocks);
        assert!(s.has_labels());
    }

    #[test]
    fn scale_one_is_identity() {
        let s = spec();
        assert_eq!(s.scaled(1.0), s);
    }

    #[test]
    fn tiny_scale_hits_floors() {
        let s = spec().scaled(0.001);
        assert_eq!(s.num_nodes, 300);
        assert!(s.num_edges >= 600);
    }

    #[test]
    fn scaled_density_stays_feasible() {
        // The intra-block capacity cap: intra edges fit in half the
        // available intra pairs at every scale.
        for sc in [0.02, 0.05, 0.1, 0.25, 0.5] {
            let s = spec().scaled(sc);
            let block = s.num_nodes / s.num_blocks.max(1);
            let intra_pairs = s.num_blocks * block * (block - 1) / 2;
            let intra_edges = (1.0 - s.mixing) * s.num_edges as f64;
            assert!(
                intra_edges <= 0.55 * intra_pairs as f64 || s.num_edges == 2 * s.num_nodes,
                "scale {sc}: intra {intra_edges} vs pairs {intra_pairs}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        spec().scaled(0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: DatasetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pre_sign_specs_deserialize_with_no_sign_channel() {
        // Specs serialised before the sign channel existed must load
        // unchanged (serde default = unsigned).
        let json = r#"{"name":"X","num_nodes":10,"num_edges":20,"num_classes":0,
                       "num_blocks":2,"mixing":0.1,"degree_exponent":2.5,"seed":7}"#;
        let s: DatasetSpec = serde_json::from_str(json).unwrap();
        assert_eq!(s.sign_flip, None);
        assert!(!s.is_signed());
    }

    #[test]
    fn scaled_preserves_sign_channel() {
        let mut s = spec();
        s.sign_flip = Some(0.05);
        assert_eq!(s.scaled(0.25).sign_flip, Some(0.05));
        assert!(s.scaled(0.25).is_signed());
    }
}
