//! Minimal scoped thread pool and chunked parallel-for.
//!
//! The build environment has no crates.io access, so this crate implements
//! the tiny slice of `rayon`/`scoped_threadpool` the workspace needs: a
//! persistent pool of worker threads, a scoped `spawn` that may borrow from
//! the caller's stack, and deterministic chunked map/for-each helpers that
//! return results **in chunk order** so callers can reduce them with a
//! fixed floating-point summation order.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism hooks.** Nothing here forces determinism by itself, but
//!    every helper hands the closure its chunk index and returns results
//!    indexed by chunk, so a caller that derives one RNG stream per chunk
//!    and reduces in chunk order gets run-to-run identical output no matter
//!    how the OS schedules the workers (DESIGN.md §7).
//! 2. **Low per-region overhead.** Workers are spawned once and parked on a
//!    condvar; dispatching a parallel region costs one lock + wakeup per
//!    job, not a thread spawn. A pool built with `threads = 1` spawns no
//!    workers at all and runs every job inline, so the single-threaded
//!    configuration pays nothing.
//! 3. **Small and auditable.** One file, no dependencies, `unsafe` confined
//!    to the single lifetime-erasure cast that every scoped pool needs.
//!
//! # Examples
//!
//! ```
//! use advsgm_parallel::ThreadPool;
//!
//! let mut pool = ThreadPool::new(4);
//! let data: Vec<u64> = (0..1000).collect();
//! // Sum in deterministic chunk order: chunk results come back ordered.
//! let partials = pool.map_chunks(&data, 128, |_chunk, _offset, xs| {
//!     xs.iter().sum::<u64>()
//! });
//! assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
//! ```

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work queued on the pool. Jobs are erased to `'static`; the
/// scope protocol (wait-before-return) keeps the borrow sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The most workers [`resolve_threads`] will ever report, whatever the
/// environment says — an absurd `ADVSGM_THREADS` must degrade to a slow
/// run, not to a failed OS thread spawn mid-training.
pub const MAX_THREADS: usize = 1024;

/// Resolves a requested thread count to an effective one.
///
/// `requested > 0` wins verbatim. `requested == 0` means "auto": the
/// `ADVSGM_THREADS` environment variable if set to a positive integer,
/// otherwise **1**. Auto deliberately does *not* probe the machine's core
/// count: the workspace's determinism contract fixes results per
/// `(seed, threads)` pair, and a hardware-dependent default would make
/// "same command, same output" fail across machines. The result is capped
/// at [`MAX_THREADS`]; callers with their own field validation (e.g.
/// `AdvSgmConfig`) reject earlier with a proper error.
pub fn resolve_threads(requested: usize) -> usize {
    let resolved = if requested > 0 {
        requested
    } else {
        std::env::var("ADVSGM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    };
    resolved.min(MAX_THREADS)
}

/// Splits `0..len` into at most `parts` contiguous ranges of near-equal
/// length (sizes differ by at most one, longer ranges first). Returns an
/// empty vector when `len == 0`; clamps `parts` to at least 1.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let size = base + usize::from(k < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Shared worker-facing state: the job queue plus shutdown flag.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct SharedQueue {
    state: Mutex<QueueState>,
    job_ready: Condvar,
}

/// Per-scope completion tracking: outstanding job count + panic flag.
struct Completion {
    state: Mutex<(usize, bool)>,
    all_done: Condvar,
}

impl Completion {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new((0, false)),
            all_done: Condvar::new(),
        })
    }

    fn add_job(&self) {
        self.state.lock().unwrap().0 += 1;
    }

    fn finish_job(&self, panicked: bool) {
        let mut s = self.state.lock().unwrap();
        s.0 -= 1;
        s.1 |= panicked;
        if s.0 == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks until every job spawned on this scope has finished; returns
    /// whether any of them panicked.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        while s.0 > 0 {
            s = self.all_done.wait(s).unwrap();
        }
        s.1
    }
}

/// A persistent pool of worker threads with scoped spawning.
///
/// `ThreadPool::new(1)` spawns **no** OS threads — every job runs inline on
/// the calling thread — so a `threads = 1` training configuration is not
/// merely "parallel with one worker", it is the plain sequential program.
pub struct ThreadPool {
    queue: Arc<SharedQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` execution contexts (clamped to at
    /// least 1). `threads` counts the calling thread's inline fallback,
    /// so `new(n)` spawns `n` workers only for `n >= 2`, and `new(1)`
    /// spawns none.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(SharedQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
        });
        let workers = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|k| {
                    let q = Arc::clone(&queue);
                    std::thread::Builder::new()
                        .name(format!("advsgm-worker-{k}"))
                        .spawn(move || worker_loop(&q))
                        .expect("failed to spawn pool worker")
                })
                .collect()
        };
        Self { queue, workers }
    }

    /// The number of execution contexts (1 for the inline pool).
    pub fn threads(&self) -> usize {
        self.workers.len().max(1)
    }

    /// Runs `f` with a [`Scope`] on which borrowing jobs can be spawned;
    /// returns only after every spawned job has completed. Panics if any
    /// job panicked (after all jobs have still been waited for, so no
    /// borrow outlives the scope even on the panic path).
    pub fn scope<'scope, F, T>(&mut self, f: F) -> T
    where
        F: FnOnce(&Scope<'_, 'scope>) -> T,
    {
        let completion = Completion::new();
        let scope = Scope {
            queue: &self.queue,
            completion: Arc::clone(&completion),
            inline: self.workers.is_empty(),
            _marker: std::marker::PhantomData,
        };
        // Even if `f` itself panics we must wait for already-spawned jobs
        // before unwinding: they may borrow the caller's stack.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let job_panicked = completion.wait();
        match result {
            Err(e) => resume_unwind(e),
            Ok(_) if job_panicked => panic!("a job spawned on the thread pool panicked"),
            Ok(t) => t,
        }
    }

    /// Chunked parallel map over a slice: splits `items` into consecutive
    /// chunks of `chunk_len` (the last may be shorter) and calls
    /// `f(chunk_index, offset, chunk)` for each, returning the results
    /// **ordered by chunk index** — the hook for deterministic reductions.
    pub fn map_chunks<T, R, F>(&mut self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &[T]) -> R + Sync,
    {
        let chunk_len = chunk_len.max(1);
        let n_chunks = items.len().div_ceil(chunk_len);
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (k, chunk) in items.chunks(chunk_len).enumerate() {
                let slot = &slots[k];
                let f = &f;
                s.spawn(move || {
                    *slot.lock().unwrap() = Some(f(k, k * chunk_len, chunk));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("job completed"))
            .collect()
    }

    /// Index-range parallel map: splits `0..len` into at most `parts`
    /// near-equal ranges and calls `f(part_index, range)` for each,
    /// returning results ordered by part index.
    pub fn map_parts<R, F>(&mut self, len: usize, parts: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(len, parts);
        let slots: Vec<Mutex<Option<R>>> = (0..ranges.len()).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (k, range) in ranges.into_iter().enumerate() {
                let slot = &slots[k];
                let f = &f;
                s.spawn(move || {
                    *slot.lock().unwrap() = Some(f(k, range));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("job completed"))
            .collect()
    }

    /// Chunked parallel for-each over a mutable slice: each chunk of
    /// `chunk_len` consecutive elements is handed to exactly one job as
    /// `f(chunk_index, offset, chunk)`. Chunks are disjoint, so no
    /// synchronisation is needed inside `f`.
    pub fn for_each_chunk_mut<T, F>(&mut self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        self.scope(|s| {
            for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
                let f = &f;
                s.spawn(move || f(k, k * chunk_len, chunk));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.shutdown = true;
        }
        self.queue.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Spawning surface handed to [`ThreadPool::scope`] closures. Jobs may
/// borrow anything that outlives the scope (`'scope`).
pub struct Scope<'pool, 'scope> {
    queue: &'pool Arc<SharedQueue>,
    completion: Arc<Completion>,
    inline: bool,
    /// Invariant over `'scope`, mirroring `std::thread::Scope`.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Spawns a job on the pool. On an inline (1-thread) pool the job runs
    /// immediately on the calling thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.inline {
            f();
            return;
        }
        self.completion.add_job();
        let completion = Arc::clone(&self.completion);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the only lifetime-bearing capture in `job` is bounded by
        // `'scope`. `ThreadPool::scope` blocks on `completion.wait()` until
        // this job has run to completion (including on every panic path)
        // before control can return to the code owning the borrowed data,
        // so erasing the lifetime to `'static` cannot produce a dangling
        // reference. This is the standard scoped-threadpool construction.
        let job: Job = unsafe { std::mem::transmute(job) };
        let wrapped: Job = Box::new(move || {
            let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
            completion.finish_job(panicked);
        });
        {
            let mut state = self.queue.state.lock().unwrap();
            state.jobs.push_back(wrapped);
        }
        self.queue.job_ready.notify_one();
    }
}

fn worker_loop(queue: &SharedQueue) {
    loop {
        let job = {
            let mut state = queue.state.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue.job_ready.wait(state).unwrap();
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let ranges = chunk_ranges(len, parts);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start, "gap at {r:?}");
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, len, "len={len} parts={parts}");
                if len > 0 {
                    assert!(ranges.len() <= parts.max(1));
                    assert!(ranges.iter().all(|r| !r.is_empty()));
                }
            }
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit_and_caps() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(usize::MAX), MAX_THREADS);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let mut pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let mut observed = None;
        pool.scope(|s| {
            s.spawn(|| observed = Some(std::thread::current().id()));
        });
        assert_eq!(observed, Some(tid), "inline pool must not hop threads");
    }

    #[test]
    fn scope_jobs_borrow_and_complete() {
        let mut pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let mut pool = ThreadPool::new(4);
        let data: Vec<usize> = (0..103).collect();
        let got = pool.map_chunks(&data, 10, |k, offset, chunk| {
            assert_eq!(offset, k * 10);
            (k, chunk.to_vec())
        });
        assert_eq!(got.len(), 11);
        for (k, (idx, chunk)) in got.iter().enumerate() {
            assert_eq!(*idx, k);
            let expect: Vec<usize> = (k * 10..(k * 10 + chunk.len())).collect();
            assert_eq!(*chunk, expect);
        }
        assert_eq!(got.last().unwrap().1.len(), 3);
    }

    #[test]
    fn map_parts_matches_chunk_ranges() {
        let mut pool = ThreadPool::new(3);
        let got = pool.map_parts(100, 3, |k, r| (k, r));
        assert_eq!(
            got.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            chunk_ranges(100, 3)
        );
    }

    #[test]
    fn for_each_chunk_mut_writes_disjoint_chunks() {
        let mut pool = ThreadPool::new(4);
        let mut data = vec![0usize; 57];
        pool.for_each_chunk_mut(&mut data, 8, |k, offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = k * 1000 + offset + i;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 8) * 1000 + i);
        }
    }

    #[test]
    fn reduction_in_chunk_order_is_deterministic() {
        // The load-bearing property: unordered scheduling, ordered results.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let reduce = |pool: &mut ThreadPool| {
            let partials = pool.map_chunks(&data, 613, |_, _, c| c.iter().sum::<f64>());
            partials.iter().fold(0.0f64, |a, b| a + b).to_bits()
        };
        let mut p4 = ThreadPool::new(4);
        let mut p2 = ThreadPool::new(2);
        let mut p1 = ThreadPool::new(1);
        let first = reduce(&mut p4);
        for _ in 0..10 {
            assert_eq!(reduce(&mut p4), first);
        }
        // Same chunking => same bits regardless of pool width.
        assert_eq!(reduce(&mut p2), first);
        assert_eq!(reduce(&mut p1), first);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut pool = ThreadPool::new(2);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map_chunks(&empty, 4, |_, _, c| c.len()).is_empty());
        assert!(pool.map_parts(0, 4, |_, r| r.len()).is_empty());
        let mut none: Vec<u8> = Vec::new();
        pool.for_each_chunk_mut(&mut none, 4, |_, _, _| panic!("no chunks"));
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let mut pool = ThreadPool::new(4);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let done = &done;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-panic");
        assert_eq!(
            done.load(Ordering::Relaxed),
            15,
            "all non-panicking jobs ran"
        );
        // Pool must remain usable after a panicked scope.
        let ok = pool.map_parts(10, 2, |_, r| r.len());
        assert_eq!(ok.iter().sum::<usize>(), 10);
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let mut pool = ThreadPool::new(3);
        for round in 0..20 {
            let sum: usize = pool
                .map_parts(100, 5, |_, r| r.map(|i| i + round).sum::<usize>())
                .iter()
                .sum();
            assert_eq!(sum, (0..100).map(|i| i + round).sum::<usize>());
        }
    }
}
