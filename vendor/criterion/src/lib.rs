//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated timing
//! loop reporting mean ns/iteration; there is no statistical analysis,
//! HTML report, or baseline comparison. Good enough to smoke-run hot
//! paths offline; absolute numbers are indicative only.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export point used by generated `criterion_main!` code.
pub use std::hint::black_box;

/// Target measuring time per benchmark; kept small so `cargo bench`
/// over the whole workspace completes quickly.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// Entry point and shared configuration for a benchmark run.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` plus any user filter string;
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Accepts CLI configuration; the vendored harness already read the
    /// filter in `default()`, so this is identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self.filter.as_deref(), &name, 100, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales measuring effort).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the nominal measurement time (accepted for API fidelity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(self.parent.filter.as_deref(), &full, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(filter: Option<&str>, name: &str, sample_size: usize, mut f: F) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // Scale effort down for benches that asked for few samples (they are
    // expensive); criterion's default is 100.
    let budget = TARGET_MEASURE.mul_f64((sample_size as f64 / 100.0).clamp(0.05, 1.0));
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench {name:<50} {ns:>14.1} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {name:<50} (no measurements)");
    }
}

/// Passed to the closure given to `bench_function`; runs the measured
/// routine.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time budget is consumed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters: u64 = 1;
        let mut elapsed = first;
        // Batch iterations so clock overhead stays negligible.
        let batch = (Duration::from_millis(2).as_nanos() / first.as_nanos().max(1))
            .clamp(1, 100_000) as u64;
        while elapsed < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut hits = 0u64;
        group.bench_function("inner", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
