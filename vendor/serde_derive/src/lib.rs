//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on top of `proc_macro` (no `syn`/`quote` — the
//! build environment is offline), which is practical because the supported
//! shape is deliberately narrow: non-generic structs with named fields.
//! Anything else produces a compile error naming the limitation.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Derives `serde::Serialize` by rendering each named field into a
/// `serde::Value::Object` entry.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` by reading each named field back out of a
/// `serde::Value::Object`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("compile_error tokens")
        }
    };
    let name = &parsed.name;
    let code = match mode {
        Mode::Serialize => {
            let pushes: String = parsed
                .fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Mode::Deserialize => {
            let inits: String = parsed
                .fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             __v.get_field({f:?})\
                                .ok_or_else(|| ::serde::Error::missing_field({f:?}))?,\
                         )?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if !matches!(__v, ::serde::Value::Object(_)) {{\n\
                             return ::std::result::Result::Err(::serde::Error::type_mismatch(\"object\", __v));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl tokens")
}

struct ParsedStruct {
    name: String,
    fields: Vec<String>,
}

/// Errors on `#[serde(...)]` attributes: upstream honours them, this stub
/// would silently ignore them, so refusing loudly is the only safe option.
fn reject_serde_attr(attr_group: &TokenTree) -> Result<(), String> {
    if let TokenTree::Group(g) = attr_group {
        if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
            if id.to_string() == "serde" {
                return Err(
                    "the vendored serde derive does not support #[serde(...)] attributes"
                        .to_string(),
                );
            }
        }
    }
    Ok(())
}

/// Parses `(pub)? struct Name { fields }`, skipping attributes, doc
/// comments, and field visibility. Rejects enums, tuple/unit structs, and
/// generics with a clear message.
fn parse_struct(input: TokenStream) -> Result<ParsedStruct, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility tokens before the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group, rejecting
                // #[serde(...)] which this derive cannot honour.
                if let Some(tt) = iter.next() {
                    reject_serde_attr(&tt)?;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Optional `pub(...)` restriction group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected struct name".to_string()),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(
                    "the vendored serde derive only supports structs with named fields".to_string(),
                );
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "expected a struct definition".to_string())?;

    // Next meaningful token must be the brace group (no generics supported).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "the vendored serde derive does not support generics (struct {name})"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "the vendored serde derive does not support tuple structs (struct {name})"
                ));
            }
            Some(_) => continue,
            None => {
                return Err(format!(
                    "the vendored serde derive does not support unit structs (struct {name})"
                ))
            }
        }
    };

    // Extract field names: idents immediately followed by `:` at depth 0 of
    // the angle-bracket nesting inside the brace group.
    let mut fields = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        // Skip attributes and visibility before each field.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(tt) = tokens.next() {
                    reject_serde_attr(&tt)?; // the [...] group
                }
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        let fname = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{fname}`")),
        }
        fields.push(fname);
        // Consume the type up to the next top-level comma. The `>` of a
        // `->` return arrow (fn-pointer types) is not an angle closer: it
        // arrives as a joint `-` punct followed by `>`.
        let mut angle_depth = 0i32;
        let mut prev_joint_minus = false;
        for tt in tokens.by_ref() {
            let mut joint_minus = false;
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if !prev_joint_minus => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    '-' if p.spacing() == Spacing::Joint => joint_minus = true,
                    _ => {}
                }
            }
            prev_joint_minus = joint_minus;
        }
    }

    Ok(ParsedStruct { name, fields })
}
