//! Vendored, dependency-free JSON front-end for the `serde` stand-in:
//! renders `serde::Value` trees to JSON text and parses JSON text back.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Error from JSON rendering or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a JSON string into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---- rendering -------------------------------------------------------------

fn render(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                // Upstream serde_json renders NaN/inf as null.
                out.push_str("null");
            } else {
                // `{}` prints shortest-roundtrip for f64, but renders
                // integral values without a decimal point; append ".0" like
                // upstream serde_json so the JSON type stays "float".
                let s = x.to_string();
                let integral = !s.contains(['.', 'e', 'E']);
                out.push_str(&s);
                if integral {
                    out.push_str(".0");
                }
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uDC00-\uDFFF low
                                // surrogate must follow (UTF-16 pair).
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Reads four hex digits of a `\u` escape (the `\u` itself already
    /// consumed).
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        // Digit-only tokens that overflow i64/u64 (e.g. 1e20 rendered by
        // Display as a long decimal integer) fall back to f64, matching
        // upstream serde_json's arbitrary-precision-off behaviour.
        let parsed = if is_float {
            text.parse::<f64>().map(Value::F64).ok()
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .ok()
                .or_else(|| text.parse::<f64>().map(Value::F64).ok())
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .ok()
                .or_else(|| text.parse::<f64>().map(Value::F64).ok())
        };
        parsed.ok_or_else(|| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&0.6095f64).unwrap(), "0.6095");
        // Integral floats keep a decimal point, like upstream serde_json.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-3.0f64).unwrap(), "-3.0");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(v.get_field("b").unwrap().get_field("c"), Some(&Value::Null));
        match v.get_field("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items[0], Value::U64(1));
                assert_eq!(items[1], Value::I64(-2));
                assert_eq!(items[2], Value::F64(3.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn large_floats_roundtrip() {
        // Display renders 1e20 without an exponent; the parser must fall
        // back to f64 when the digit string overflows the integer types.
        let s = to_string(&1e20f64).unwrap();
        assert_eq!(s, "100000000000000000000.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1e20);
        let neg: f64 = from_str("-100000000000000000000").unwrap();
        assert_eq!(neg, -1e20);
    }

    #[test]
    fn roundtrips_vec() {
        let xs = vec![1.5f64, -2.0, 3.25];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // U+1F600 as the UTF-16 pair upstream encoders emit.
        let s: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(s, "\u{1F600}");
        // BMP escape still works.
        let s: String = from_str(r#""\u00e9""#).unwrap();
        assert_eq!(s, "\u{00e9}");
        // Unpaired or malformed surrogates are rejected.
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn non_finite_floats_render_as_null_like_upstream() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "null");
    }
}
