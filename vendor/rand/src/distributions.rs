//! Distributions: the `Standard` distribution backing `Rng::gen` and a
//! uniform distribution object for explicit sampling.

use crate::{RngCore, SampleUniform};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: unit interval for floats, full
/// width for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// A uniform distribution over a half-open range, reusable across draws.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T: SampleUniform> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.lo, self.hi, self.inclusive)
    }
}
