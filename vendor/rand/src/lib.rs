//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the exact API subset the AdvSGM workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, a deterministic
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`distributions::Standard`] distribution for `gen::<T>()`, and uniform
//! range sampling for `gen_range`. Determinism is the only contract the
//! workspace relies on: the same seed always yields the same stream.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 exactly
    /// like upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Upstream seeds from OS entropy; this offline build has no entropy
    /// source, and silently returning a fixed stream would be a privacy
    /// hazard for DP noise. Panics so the first caller notices.
    fn from_entropy() -> Self {
        panic!(
            "rand::SeedableRng::from_entropy is unavailable in this offline \
             vendored build; use seed_from_u64 with an explicit seed"
        );
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty inclusive range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Rejection-free-enough uniform integer in `[0, span)`; rejects the biased
/// tail so small spans are exactly uniform.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width range: any u64 is a valid offset.
                    return (lo_w + (rng.next_u64() as u128 % (span.max(1))) as i128) as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo_w + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Unit draw shares the Standard f64 conversion so gen() and
                // gen_range() stay stream-compatible; compare *after* the
                // cast, which can round up to the bound in the target type.
                let unit: f64 = crate::distributions::Standard.sample(rng);
                let lo_f = lo as f64;
                let hi_f = hi as f64;
                let span = hi_f - lo_f;
                let v = if span.is_finite() {
                    (lo_f + span * unit) as $t
                } else {
                    // The span overflows f64 (e.g. MIN..MAX): split at the
                    // midpoint; each half has a representable width.
                    let mid = lo_f / 2.0 + hi_f / 2.0;
                    if unit < 0.5 {
                        (lo_f + (mid - lo_f) * (unit * 2.0)) as $t
                    } else {
                        (mid + (hi_f - mid) * ((unit - 0.5) * 2.0)) as $t
                    }
                };
                if inclusive {
                    v.clamp(lo, hi)
                } else if v >= hi && lo < hi {
                    // Rounding pushed the draw onto the open bound; take the
                    // largest representable value below it.
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn gen_range_f32_never_reaches_open_bound() {
        // About half the f64 draws in [1.0, next_up(1.0)) round *up* to the
        // bound when cast to f32; the exclusive contract must still hold.
        let mut rng = SmallRng::seed_from_u64(9);
        let hi = 1.0f32.next_up();
        for _ in 0..2000 {
            let v = rng.gen_range(1.0f32..hi);
            assert!(v < hi, "open bound reached: {v}");
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn gen_range_full_width_float_span() {
        // hi - lo overflows f64 here; sampling must stay finite, in-range,
        // and non-constant.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = rng.gen_range(f64::MIN..f64::MAX);
            assert!(v.is_finite(), "non-finite sample {v}");
            assert!((f64::MIN..f64::MAX).contains(&v));
            seen.insert(v.to_bits());
        }
        assert!(
            seen.len() > 100,
            "degenerate sampling: {} values",
            seen.len()
        );
    }

    #[test]
    fn gen_range_float_inclusive() {
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
        // Degenerate inclusive range yields its single point.
        assert_eq!(rng.gen_range(2.5f64..=2.5), 2.5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            let expected = n / 8;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn bool_gen_is_balanced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues={trues}");
    }

    #[test]
    fn reborrowed_rng_is_still_rng() {
        fn takes_rng(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(8);
        let r = &mut rng;
        let v = takes_rng(r);
        assert!((0.0..1.0).contains(&v));
    }
}
