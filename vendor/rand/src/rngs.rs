//! Concrete RNG implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator — xoshiro256++, the same
/// algorithm upstream `rand 0.8` uses for `SmallRng` on 64-bit targets.
///
/// Not cryptographically secure; the workspace only needs reproducibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SmallRng {
    /// The generator's full internal state — four xoshiro256++ words.
    ///
    /// Together with [`SmallRng::from_state`] this makes the generator
    /// checkpointable: persisting the four words and restoring them later
    /// resumes the exact output stream, which the workspace's bitwise
    /// resume contract depends on.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    ///
    /// The all-zero state (xoshiro's one fixed point, unreachable from any
    /// seeded generator) is nudged to the same constants `from_seed` uses,
    /// so a hand-made zero state cannot produce a constant stream.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

/// Deterministic stand-in for the OS-seeded `StdRng`; alias of [`SmallRng`]
/// mechanics with an independent type for API fidelity.
#[derive(Debug, Clone)]
pub struct StdRng(SmallRng);

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(SmallRng::from_seed(seed))
    }
}
