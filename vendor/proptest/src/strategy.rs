//! Strategies: value generators for property tests.

use core::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A generator of values for one property-test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Range strategies delegate to the vendored `rand` uniform sampler, which
// owns the edge-case handling (exclusive bounds under float rounding,
// inclusive and full-width spans).
macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
