//! Collection strategies.

use core::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// Length range accepted by [`vec()`]: a `usize` (exact) or `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}
