//! Vendored, dependency-free stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over functions whose arguments are drawn from
//! strategies, numeric range strategies, tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! No shrinking: each test runs a fixed number of deterministic cases
//! (default 64, overridable via the `PROPTEST_CASES` environment
//! variable). Cases are seeded from the test name and case index, so a
//! failing case reproduces exactly on re-run.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Number of cases each property runs, from `PROPTEST_CASES` (default 64).
///
/// The default is deliberately modest so the whole tier-1 suite stays fast;
/// raise it locally for deeper sweeps.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case RNG: a vendored-`rand` [`SmallRng`] seeded from
/// an FNV-1a hash of the test name mixed with the case index, so the RNG
/// primitives live in exactly one place.
///
/// [`SmallRng`]: rand::rngs::SmallRng
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        rand::Rng::gen(&mut self.inner)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        rand::Rng::gen_range(&mut self.inner, 0..span)
    }

    /// Uniform sample from any range the vendored `rand` crate accepts;
    /// strategies delegate here so range edge-case handling (exclusive
    /// bounds under float rounding, inclusive spans) lives in one place.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: rand::SampleUniform,
        R: rand::SampleRange<T>,
    {
        rand::Rng::gen_range(&mut self.inner, range)
    }
}

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: usize) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    use rand::SeedableRng;
    TestRng {
        inner: rand::rngs::SmallRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ),
    }
}

/// Prints the failing case index if the body panics, so the deterministic
/// case can be re-run directly.
pub struct CaseGuard {
    name: &'static str,
    case: usize,
    armed: bool,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: usize) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// Disarms after the body completed without panicking.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at deterministic case {} \
                 (of {}; set PROPTEST_CASES to change the sweep)",
                self.name,
                self.case,
                cases()
            );
        }
    }
}

/// Defines property tests: each function's arguments are sampled from the
/// strategies after `in`, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    let mut __guard = $crate::CaseGuard::new(stringify!($name), __case);
                    $(let $pat = $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);)+
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two values are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..500 {
            let x = (-2.0f64..3.0).sample_value(&mut rng);
            assert!((-2.0..3.0).contains(&x));
            let n = (1usize..7).sample_value(&mut rng);
            assert!((1..7).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_len_range() {
        let mut rng = crate::test_rng("vec", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0usize..5, 2..9).sample_value(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn tuple_strategy_samples_both() {
        let mut rng = crate::test_rng("tuple", 0);
        let (a, b) = (0usize..3, 10usize..13).sample_value(&mut rng);
        assert!(a < 3);
        assert!((10..13).contains(&b));
    }

    crate::proptest! {
        #[test]
        fn macro_smoke(x in 0.0f64..1.0, n in 1usize..5) {
            crate::prop_assert!((0.0..1.0).contains(&x));
            crate::prop_assert!((1..5).contains(&n));
        }
    }
}
