//! Integration tests for the vendored derive macros, driven through the
//! `serde` facade exactly as workspace crates use them.

use std::marker::PhantomData;

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Plain {
    name: String,
    count: usize,
    ratio: f64,
    on: bool,
}

#[test]
fn derive_roundtrips_named_fields() {
    let p = Plain {
        name: "x".into(),
        count: 3,
        ratio: 0.5,
        on: true,
    };
    let v = p.to_value();
    assert_eq!(v.get_field("count"), Some(&Value::U64(3)));
    let back = Plain::from_value(&v).unwrap();
    assert_eq!(back, p);
}

#[test]
fn derive_reports_missing_fields() {
    let v = Value::Object(vec![("name".into(), Value::Str("x".into()))]);
    let err = Plain::from_value(&v).unwrap_err();
    assert!(err.to_string().contains("missing field"), "{err}");
}

// Regression: the `>` of a `->` return arrow in a field's type must not be
// mistaken for an angle-bracket closer, which would swallow every later
// field during derive expansion.
#[derive(Debug, Serialize, Deserialize)]
struct WithArrowType {
    marker: PhantomData<fn(u32) -> u32>,
    after: u64,
}

#[test]
fn derive_survives_fn_pointer_arrow_in_field_type() {
    let w = WithArrowType {
        marker: PhantomData,
        after: 7,
    };
    let v = w.to_value();
    assert_eq!(
        v.get_field("after"),
        Some(&Value::U64(7)),
        "field after the fn-pointer type was dropped by the derive"
    );
    let back = WithArrowType::from_value(&v).unwrap();
    assert_eq!(back.after, 7);
}
