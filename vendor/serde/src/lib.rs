//! Vendored, dependency-free stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stub lowers everything
//! through a self-describing [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` rebuilds one from it. The derive macros
//! (re-exported from the companion `serde_derive` proc-macro crate)
//! generate field-by-field impls for plain structs with named fields —
//! exactly the shapes this workspace serialises. `serde_json` renders and
//! parses the `Value` tree as JSON text.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between the
/// `Serialize`/`Deserialize` traits and format crates like `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field in an `Object` value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error raised while building or destructuring a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A struct field absent from the input object.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// The input value had the wrong shape for the target type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::type_mismatch("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                // JSON renders 1.0 as "1", so integers coerce to floats.
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: ?Sized> Serialize for core::marker::PhantomData<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: ?Sized> Deserialize for core::marker::PhantomData<T> {
    fn from_value(_v: &Value) -> Result<Self, Error> {
        Ok(core::marker::PhantomData)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Str("x".into())),
        ]);
        assert_eq!(v.get_field("a"), Some(&Value::U64(1)));
        assert_eq!(v.get_field("missing"), None);
        assert_eq!(Value::Null.get_field("a"), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::U64(7)).unwrap(), 7);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(4);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }
}
